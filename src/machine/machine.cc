#include "machine/machine.h"

#include <algorithm>
#include <utility>

#include "core/arch_registry.h"
#include "util/str.h"

namespace dbmr::machine {

void EnsureSimArchsLinked() {
  ArchRegistryAnchorBare();
  ArchRegistryAnchorLogging();
  ArchRegistryAnchorShadow();
  ArchRegistryAnchorOverwrite();
  ArchRegistryAnchorVersionSelect();
  ArchRegistryAnchorDifferential();
}

Placement RecoveryArch::ReadPlacement(uint64_t page) {
  return machine_->HomePlacement(page);
}

Auditor* RecoveryArch::auditor() const { return machine_->auditor(); }

void RecoveryArch::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                    std::function<void()> done) {
  Placement pl = machine_->HomePlacement(page);
  machine_->NoteHomeWrite(t, page);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, /*is_write=*/true, 1, std::move(done)});
}

Machine::Machine(const MachineConfig& config,
                 std::unique_ptr<workload::TxnSource> source,
                 std::unique_ptr<RecoveryArch> arch)
    : config_(config),
      source_(std::move(source)),
      arch_(std::move(arch)),
      rng_(config.seed) {
  DBMR_CHECK(arch_ != nullptr);
  DBMR_CHECK(source_ != nullptr);
  DBMR_CHECK(config_.num_query_processors > 0);
  DBMR_CHECK(config_.cache_frames > 0);
  DBMR_CHECK(config_.num_data_disks > 0);
  DBMR_CHECK(static_cast<int64_t>(config_.db_pages) <=
             config_.data_pages_per_disk() * config_.num_data_disks);
  // Attach the trace ring before any device exists so every component
  // registers its track in a deterministic order.
  sim_.set_trace(config_.trace);
  if (sim::TraceRing* tr = sim_.trace()) {
    machine_track_ = tr->RegisterTrack("machine");
  }
  for (int i = 0; i < config_.num_data_disks; ++i) {
    data_disks_.push_back(std::make_unique<hw::DiskModel>(
        &sim_, StrFormat("data%d", i), config_.geometry, config_.disk_kind,
        rng_.Fork()));
  }
  free_frames_ = config_.cache_frames;
  qp_busy_stat_.Set(0.0, 0.0);
  blocked_pages_stat_.Set(0.0, 0.0);
  if (config_.audit) {
    AuditorOptions opts;
    opts.cache_frames = config_.cache_frames;
    opts.num_query_processors = config_.num_query_processors;
    opts.abort_on_violation = config_.audit_abort;
    opts.repro_hint = config_.audit_repro_hint;
    auditor_ = std::make_unique<Auditor>(std::move(opts), &sim_, &locks_,
                                         sim_.trace());
    // Tell the auditor which per-architecture checks this architecture
    // declares in the registry, so violations of undeclared checks are
    // flagged as registry drift.  Unregistered architectures (test fakes)
    // simply leave the declared set unset.
    if (const core::ArchEntry* entry =
            core::ArchRegistry::Global().Find(arch_->registry_name())) {
      auditor_->SetDeclaredChecks(entry->invariants);
    }
  }
  arch_->Attach(this);
}

Machine::Machine(const MachineConfig& config,
                 std::vector<workload::TransactionSpec> workload,
                 std::unique_ptr<RecoveryArch> arch)
    : Machine(config, workload::MakeVectorSource(std::move(workload)),
              std::move(arch)) {}

Machine::~Machine() = default;

Placement Machine::HomePlacement(uint64_t page) const {
  const auto ppc = static_cast<uint64_t>(config_.geometry.pages_per_cylinder());
  const auto ndisks = static_cast<uint64_t>(config_.num_data_disks);
  const uint64_t cyl_group = page / ppc;
  Placement pl;
  pl.disk = static_cast<int>(cyl_group % ndisks);
  pl.addr.cylinder = static_cast<int32_t>(cyl_group / ndisks);
  pl.addr.slot = static_cast<int32_t>(page % ppc);
  DBMR_CHECK(pl.addr.cylinder <
             config_.geometry.cylinders - config_.reserved_cylinders);
  return pl;
}

Placement Machine::ScratchPlacement(int disk, uint64_t index) const {
  const auto ppc = static_cast<uint64_t>(config_.geometry.pages_per_cylinder());
  const auto reserved =
      static_cast<uint64_t>(config_.reserved_cylinders) * ppc;
  Placement pl;
  pl.disk = disk;
  const uint64_t slot_index = index % reserved;
  pl.addr.cylinder =
      static_cast<int32_t>(config_.geometry.cylinders -
                           config_.reserved_cylinders +
                           static_cast<int32_t>(slot_index / ppc));
  pl.addr.slot = static_cast<int32_t>(slot_index % ppc);
  return pl;
}

bool Machine::TryTakeFrame() {
  if (free_frames_ <= 0) return false;
  --free_frames_;
  return true;
}

void Machine::ReturnFrame() {
  ++free_frames_;
  Pump();
}

void Machine::NoteHomeWrite(txn::TxnId t, uint64_t page) {
  if (auditor_) auditor_->OnHomeWriteIssued(t, page);
  TraceEmit(sim::TraceKind::kHomeWriteIssue, t, page);
  ++pages_written_;
}

Machine::TxnRun* Machine::AcquireRun() {
  TxnRun* t;
  if (!free_runs_.empty()) {
    t = free_runs_.back();
    free_runs_.pop_back();
  } else {
    run_pool_.push_back(std::make_unique<TxnRun>());
    t = run_pool_.back().get();
  }
  const bool ok = source_->Next(&t->spec);
  DBMR_CHECK(ok);
  ++generated_txns_;
  total_spec_pages_ += t->spec.num_reads() + t->spec.num_writes();
  t->next_read = 0;
  t->outstanding = 0;
  t->committing = false;
  t->doomed = false;
  t->paused = false;
  t->in_eligible = false;
  t->waiting_locks = 0;
  t->admit_time = 0;
  t->restarts = 0;
  t->prev_active = t->next_active = nullptr;
  t->prev_elig = t->next_elig = nullptr;
  return t;
}

void Machine::RecycleRun(TxnRun* txn) { free_runs_.push_back(txn); }

void Machine::ActiveAppend(TxnRun* t) {
  t->prev_active = active_tail_;
  t->next_active = nullptr;
  if (active_tail_ != nullptr) {
    active_tail_->next_active = t;
  } else {
    active_head_ = t;
  }
  active_tail_ = t;
}

void Machine::ActiveUnlink(TxnRun* t) {
  if (t->prev_active != nullptr) {
    t->prev_active->next_active = t->next_active;
  } else {
    active_head_ = t->next_active;
  }
  if (t->next_active != nullptr) {
    t->next_active->prev_active = t->prev_active;
  } else {
    active_tail_ = t->prev_active;
  }
  t->prev_active = t->next_active = nullptr;
}

void Machine::EligibleAppend(TxnRun* t) {
  DBMR_CHECK(!t->in_eligible);
  t->in_eligible = true;
  t->prev_elig = elig_tail_;
  t->next_elig = nullptr;
  if (elig_tail_ != nullptr) {
    elig_tail_->next_elig = t;
  } else {
    elig_head_ = t;
  }
  elig_tail_ = t;
}

void Machine::EligibleUnlink(TxnRun* t) {
  if (!t->in_eligible) return;
  t->in_eligible = false;
  if (t->prev_elig != nullptr) {
    t->prev_elig->next_elig = t->next_elig;
  } else {
    elig_head_ = t->next_elig;
  }
  if (t->next_elig != nullptr) {
    t->next_elig->prev_elig = t->prev_elig;
  } else {
    elig_tail_ = t->prev_elig;
  }
  t->prev_elig = t->next_elig = nullptr;
}

void Machine::EligibleRelink(TxnRun* txn) {
  if (txn->in_eligible) return;
  // Restore admission-order position: insert before the first eligible
  // successor on the active list.  Restart wake-ups are rare (deadlock
  // victims only), so the forward walk is off the hot path.
  TxnRun* succ = txn->next_active;
  while (succ != nullptr && !succ->in_eligible) succ = succ->next_active;
  if (succ == nullptr) {
    EligibleAppend(txn);
    return;
  }
  txn->in_eligible = true;
  txn->next_elig = succ;
  txn->prev_elig = succ->prev_elig;
  if (succ->prev_elig != nullptr) {
    succ->prev_elig->next_elig = txn;
  } else {
    elig_head_ = txn;
  }
  succ->prev_elig = txn;
}

MachineResult Machine::Run() {
  Start();
  sim_.Run();
  return Finish();
}

void Machine::Start() {
  DBMR_CHECK(!started_);
  started_ = true;
  // Pre-size every steady-state container: the TxnRun pool holds at most
  // MPL live transactions, ready pages are bounded by cache frames, and
  // the event pool by frames + QPs + per-device events — so the pump loop
  // runs allocation-free once warm (asserted by tests/machine_test.cc).
  const uint64_t total = source_->total();
  const auto pool_target = static_cast<size_t>(std::min<uint64_t>(
      total, static_cast<uint64_t>(config_.mpl) + 1));
  run_pool_.reserve(pool_target);
  free_runs_.reserve(pool_target);
  ready_.Reserve(static_cast<size_t>(config_.cache_frames));
  sim_.Reserve(static_cast<size_t>(config_.cache_frames) +
               static_cast<size_t>(config_.num_query_processors) +
               2 * static_cast<size_t>(config_.num_data_disks) +
               static_cast<size_t>(config_.mpl) + 16);
  if (open_system()) {
    // Open system: exponential arrivals as a self-rescheduling event
    // chain (O(1) pending arrival events at any moment); admit up to the
    // MPL on arrival, queue otherwise.  Completion then measures
    // response time.  Arrivals draw from their own seed-derived stream
    // so the machine's rng_ sequence is identical in open and closed
    // runs.
    arrival_rng_ = Rng(config_.seed ^ 0x5bf0a8b1e1d3a0a7ULL);
    arrival_backlog_.Reserve(
        static_cast<size_t>(std::min<uint64_t>(total, 4096)));
    ScheduleNextArrival(0.0);
  } else {
    for (int i = 0; i < config_.mpl; ++i) AdmitNext();
  }
  Pump();
}

void Machine::ScheduleNextArrival(sim::TimeMs base) {
  if (arrivals_scheduled_ >= source_->total()) return;
  ++arrivals_scheduled_;
  const sim::TimeMs when =
      base + arrival_rng_.Exponential(config_.mean_interarrival_ms);
  sim_.ScheduleAt(when, [this, when] {
    ScheduleNextArrival(when);
    arrival_backlog_.push_back(when);
    if (active_count_ < config_.mpl) AdmitNext();
    Pump();
  });
}

MachineResult Machine::Finish() {
  DBMR_CHECK(completed_txns_ == source_->total());
  if (auditor_) auditor_->OnRunEnd(free_frames_, busy_qps_, blocked_pages_);

  MachineResult r;
  r.arch_name = arch_->name();
  r.total_time_ms = completion_end_;
  r.total_pages = total_spec_pages_;
  r.exec_time_per_page_ms =
      r.total_time_ms / static_cast<double>(r.total_pages);
  r.completion_ms = completion_ms_;
  r.pages_read = pages_read_;
  r.pages_written = pages_written_;
  for (auto& d : data_disks_) {
    r.data_disk_util.push_back(d->Utilization());
    r.data_disk_accesses.push_back(d->accesses());
  }
  r.qp_util = qp_busy_stat_.Average(sim_.Now()) /
              static_cast<double>(config_.num_query_processors);
  r.avg_blocked_pages = blocked_pages_stat_.Average(sim_.Now());
  r.deadlock_restarts = deadlock_restarts_;
  const sim::SimCounters& sc = sim_.counters();
  r.extra["sim_events_executed"] = static_cast<double>(sc.events_executed);
  r.extra["sim_events_scheduled"] = static_cast<double>(sc.events_scheduled);
  r.extra["sim_max_heap_depth"] = static_cast<double>(sc.max_heap_depth);
  r.extra["sim_slot_pool_highwater"] =
      static_cast<double>(sc.slot_pool_highwater);
  // Only surfaced when the run actually outgrew the heap, so paper-scale
  // reports (and their goldens) are unchanged.
  if (sc.ladder_spills > 0) {
    r.extra["sim_ladder_spills"] = static_cast<double>(sc.ladder_spills);
  }
  for (size_t i = 0; i < data_disks_.size(); ++i) {
    r.extra[StrFormat("data_disk_queue_highwater_%zu", i)] =
        static_cast<double>(data_disks_[i]->max_queue_length());
  }
  arch_->ContributeStats(&r);
  if (auditor_) {
    auditor_->CheckResult(r);
    r.extra["audit_checks"] = static_cast<double>(auditor_->checks());
    r.extra["audit_violation_count"] =
        static_cast<double>(auditor_->violations().size());
    for (const AuditViolation& v : auditor_->violations()) {
      r.audit_violations.push_back(
          StrFormat("%s: %s (t=%.3f)", v.check.c_str(), v.detail.c_str(),
                    v.when));
    }
  }
  return r;
}

void Machine::AdmitNext() {
  TxnRun* txn = nullptr;
  if (open_system()) {
    if (arrival_backlog_.empty()) return;
    // Stamped at arrival (so queueing for admission counts toward the
    // response time).
    const sim::TimeMs arrived = arrival_backlog_.front();
    arrival_backlog_.pop_front();
    txn = AcquireRun();
    txn->admit_time = arrived;
  } else {
    if (generated_txns_ >= source_->total()) return;
    // Closed batch: stamped here, at first cache-frame eligibility, per
    // the paper.
    txn = AcquireRun();
    txn->admit_time = sim_.Now();
  }
  if (auditor_) auditor_->OnAdmit(txn->spec.id);
  TraceEmit(sim::TraceKind::kTxnAdmit, txn->spec.id, txn->spec.reads.size());
  ActiveAppend(txn);
  ++active_count_;
  if (Eligible(txn)) EligibleAppend(txn);
}

void Machine::Pump() {
  if (pumping_) {
    repump_ = true;
    return;
  }
  pumping_ = true;
  do {
    repump_ = false;
    // Assign ready pages to free query processors.
    while (busy_qps_ < config_.num_query_processors && !ready_.empty()) {
      PageWork w = ready_.front();
      ready_.pop_front();
      StartProcessing(w);
    }
    // Issue anticipatory reads round-robin across eligible transactions
    // (in admission order) while cache frames remain.  The eligible list
    // holds exactly the transactions that can issue a read — a pass costs
    // O(issuers), not O(active transactions).
    bool progress = true;
    while (progress && free_frames_ > 0) {
      progress = false;
      TxnRun* txn = elig_head_;
      while (txn != nullptr && free_frames_ > 0) {
        TxnRun* const next = txn->next_elig;
        if (!Eligible(txn)) {
          // Went ineligible since it was linked; drop it lazily.
          EligibleUnlink(txn);
          txn = next;
          continue;
        }
        for (int k = 0; k < config_.read_ahead_chunk; ++k) {
          // Re-check paused too: a deadlock inside IssueRead can run the
          // whole restart synchronously (doomed set, abort completed,
          // doomed cleared, backoff pending), and issuing more reads for
          // the paused transaction here would re-deadlock it at the same
          // instant, forever.
          if (free_frames_ <= 0 || txn->doomed || txn->paused) break;
          if (txn->next_read >= txn->spec.reads.size()) break;
          IssueRead(txn);
          progress = true;
        }
        if (!Eligible(txn)) EligibleUnlink(txn);
        txn = next;
      }
    }
  } while (repump_);
  pumping_ = false;
  if (auditor_) {
    auditor_->CheckFrames(free_frames_);
    auditor_->CheckQps(busy_qps_);
  }
}

void Machine::IssueRead(TxnRun* txn) {
  const uint64_t page = txn->spec.reads[txn->next_read++];
  const bool is_write = txn->spec.write_set.count(page) > 0;
  ++txn->outstanding;
  --free_frames_;

  // Write-set pages take their exclusive lock up front, avoiding upgrade
  // deadlocks (the write set is known to the compiled transaction).
  const txn::LockMode mode =
      is_write ? txn::LockMode::kExclusive : txn::LockMode::kShared;
  const txn::TxnId id = txn->spec.id;
  auto res = locks_.Acquire(id, page, mode, [this, txn, page, is_write] {
    --txn->waiting_locks;
    if (txn->doomed) {
      ++free_frames_;
      --txn->outstanding;
      if (txn->outstanding == 0) RestartTxn(txn);
      Pump();
      return;
    }
    StartRead(txn, page, is_write);
  });
  switch (res) {
    case txn::AcquireResult::kGranted:
      StartRead(txn, page, is_write);
      break;
    case txn::AcquireResult::kWaiting:
      ++txn->waiting_locks;
      break;
    case txn::AcquireResult::kDeadlock: {
      // Victim: drain in-flight pages, then restart from scratch.  Granted
      // locks are kept until the abort completes (RestartTxn releases
      // them) so in-place overwrites are restored before anyone else can
      // read those pages; only the queued requests are dropped, which is
      // enough to break the cycle — this victim no longer waits.
      ++free_frames_;
      --txn->outstanding;
      txn->doomed = true;
      locks_.CancelWaiting(id);
      // Reclaim reads stuck waiting for locks (their queued requests were
      // just dropped).
      free_frames_ += txn->waiting_locks;
      txn->outstanding -= txn->waiting_locks;
      txn->waiting_locks = 0;
      if (txn->outstanding == 0) RestartTxn(txn);
      break;
    }
  }
}

void Machine::StartRead(TxnRun* txn, uint64_t page, bool is_write) {
  const txn::TxnId id = txn->spec.id;
  if (auditor_) auditor_->OnLockAcquired(id, page);
  TraceEmit(sim::TraceKind::kReadIssue, id, page);
  arch_->BeforeRead(id, page, [this, txn, page, is_write] {
    Placement pl = arch_->ReadPlacement(page);
    if (auditor_) auditor_->OnReadPlacement(page, pl);
    data_disks_[static_cast<size_t>(pl.disk)]->Submit(hw::DiskRequest{
        pl.addr, /*is_write=*/false, arch_->ReadTransferPages(),
        [this, txn, page, is_write] {
          ++pages_read_;
          OnReadDone(PageWork{txn, page, is_write});
        }});
  });
}

void Machine::OnReadDone(PageWork work) {
  TraceEmit(sim::TraceKind::kPageReady, work.txn->spec.id, work.page);
  ready_.push_back(work);
  Pump();
}

void Machine::StartProcessing(PageWork work) {
  ++busy_qps_;
  qp_busy_stat_.Set(sim_.Now(), static_cast<double>(busy_qps_));
  TraceEmit(sim::TraceKind::kQpStart, work.txn->spec.id, work.page);
  const sim::TimeMs service =
      config_.cpu_ms_per_page +
      arch_->ExtraCpu(work.txn->spec.id, work.page, work.is_write);
  sim_.Schedule(service, [this, work] {
    --busy_qps_;
    qp_busy_stat_.Set(sim_.Now(), static_cast<double>(busy_qps_));
    TraceEmit(sim::TraceKind::kQpEnd, work.txn->spec.id, work.page);
    OnProcessed(work);
  });
}

void Machine::OnProcessed(PageWork work) {
  if (!work.is_write || work.txn->doomed) {
    RetirePage(work);
    return;
  }
  // The query processor produced an updated page; recovery data must be
  // collected, after which the page may be written back.
  ++blocked_pages_;
  blocked_pages_stat_.Set(sim_.Now(), static_cast<double>(blocked_pages_));
  const txn::TxnId id = work.txn->spec.id;
  if (auditor_) auditor_->OnCollectStart(id, work.page);
  TraceEmit(sim::TraceKind::kCollectStart, id, work.page);
  arch_->CollectRecoveryData(id, work.page, [this, work, id] {
    --blocked_pages_;
    blocked_pages_stat_.Set(sim_.Now(),
                            static_cast<double>(blocked_pages_));
    if (auditor_) auditor_->OnRecoveryStable(id, work.page);
    TraceEmit(sim::TraceKind::kRecoveryStable, id, work.page);
    if (work.txn->doomed) {
      // The transaction became a deadlock victim while its recovery data
      // was in flight; its locks are gone, so writing the aborted update
      // home would expose uncommitted data.  Discard the page instead.
      RetirePage(work);
      return;
    }
    arch_->WriteUpdatedPage(id, work.page, [this, work, id] {
      TraceEmit(sim::TraceKind::kHomeWriteDone, id, work.page);
      RetirePage(work);
    });
  });
}

void Machine::RetirePage(PageWork work) {
  ++free_frames_;
  --work.txn->outstanding;
  MaybeComplete(work.txn);
  Pump();
}

void Machine::MaybeComplete(TxnRun* txn) {
  if (txn->outstanding != 0) return;
  if (txn->doomed) {
    RestartTxn(txn);
    return;
  }
  if (txn->committing) return;
  if (txn->next_read < txn->spec.reads.size()) return;
  txn->committing = true;
  EligibleUnlink(txn);  // no-op unless a lazy link lingered
  if (auditor_) auditor_->OnCommitStart(txn->spec.id, txn->spec.write_set);
  TraceEmit(sim::TraceKind::kCommitStart, txn->spec.id);
  arch_->OnCommit(txn->spec.id, [this, txn] { CompleteTxn(txn); });
}

void Machine::CompleteTxn(TxnRun* txn) {
  if (auditor_) auditor_->OnCommitDone(txn->spec.id);
  TraceEmit(sim::TraceKind::kCommitDone, txn->spec.id);
  completion_ms_.Add(sim_.Now() - txn->admit_time);
  completion_end_ = std::max(completion_end_, sim_.Now());
  locks_.ReleaseAll(txn->spec.id);
  EligibleUnlink(txn);
  ActiveUnlink(txn);
  --active_count_;
  ++completed_txns_;
  RecycleRun(txn);  // spec buffers feed the next admission
  AdmitNext();
  Pump();
}

void Machine::RestartTxn(TxnRun* txn) {
  ++deadlock_restarts_;
  ++txn->restarts;
  txn->paused = true;
  const txn::TxnId id = txn->spec.id;
  TraceEmit(sim::TraceKind::kRestart, id,
            static_cast<uint64_t>(txn->restarts));
  // The abort may need I/O (no-redo overwriting restores before images);
  // the victim keeps its locks until the architecture reports the abort
  // complete, so no other transaction can read the half-undone pages.
  arch_->OnRestart(id, [this, txn, id] {
    if (auditor_) auditor_->OnRestartComplete(id);
    locks_.ReleaseAll(id);
    txn->doomed = false;
    txn->next_read = 0;
    txn->committing = false;
    // Randomized backoff before the rerun: immediate restarts of mutually
    // conflicting transactions re-collide indefinitely under heavy skew.
    // The wake-up is tagged with the restart generation so a stale event
    // from an earlier restart cannot cut a later restart's backoff short.
    const int generation = txn->restarts;
    const sim::TimeMs backoff =
        rng_.Exponential(100.0 * std::min(txn->restarts, 10));
    sim_.Schedule(backoff, [this, txn, generation] {
      if (txn->restarts != generation) return;
      txn->paused = false;
      if (Eligible(txn)) EligibleRelink(txn);
      Pump();
    });
    Pump();
  });
}

}  // namespace dbmr::machine
