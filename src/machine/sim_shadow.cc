#include "machine/sim_shadow.h"

#include <memory>
#include <utility>

#include "core/arch_registry.h"
#include "machine/auditor.h"
#include "sim/trace.h"
#include "util/str.h"

namespace dbmr::machine {

SimShadow::SimShadow(SimShadowOptions options) : opts_(options) {
  DBMR_CHECK(opts_.num_pt_processors >= 1);
  DBMR_CHECK(opts_.pt_buffer_pages >= 1);
}

SimShadow::~SimShadow() = default;

std::string SimShadow::name() const {
  return StrFormat("shadow-%dpt-buf%d%s", opts_.num_pt_processors,
                   opts_.pt_buffer_pages,
                   opts_.clustered ? "" : "-scrambled");
}

void SimShadow::Attach(Machine* machine) {
  RecoveryArch::Attach(machine);
  for (int i = 0; i < opts_.num_pt_processors; ++i) {
    auto pt = std::make_unique<PtProcessor>();
    pt->cpu = std::make_unique<sim::Server>(machine->simulator(),
                                            StrFormat("ptproc%d", i));
    pt->disk = std::make_unique<hw::DiskModel>(
        machine->simulator(), StrFormat("ptdisk%d", i), opts_.pt_geometry,
        hw::DiskKind::kConventional, machine->rng()->Fork());
    pts_.push_back(std::move(pt));
  }
}

hw::DiskPageAddr SimShadow::PtAddr(uint64_t pt_page) const {
  // The page table occupies the first cylinders of its disk; with one disk
  // per processor, consecutive page-table pages interleave across them.
  const uint64_t local =
      pt_page / static_cast<uint64_t>(opts_.num_pt_processors);
  const auto ppc =
      static_cast<uint64_t>(opts_.pt_geometry.pages_per_cylinder());
  hw::DiskPageAddr addr;
  addr.cylinder = static_cast<int32_t>(local / ppc);
  addr.slot = static_cast<int32_t>(local % ppc);
  return addr;
}

bool SimShadow::BufferContains(uint64_t pt_page) const {
  return buffer_.count(pt_page) > 0;
}

void SimShadow::BufferInsert(uint64_t pt_page) {
  auto it = buffer_.find(pt_page);
  if (it != buffer_.end()) {
    lru_.erase(it->second);
    lru_.push_front(pt_page);
    it->second = lru_.begin();
    return;
  }
  if (buffer_.size() >= static_cast<size_t>(opts_.pt_buffer_pages)) {
    buffer_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(pt_page);
  buffer_.emplace(pt_page, lru_.begin());
}

void SimShadow::FetchPtPage(uint64_t pt_page, std::function<void()> done) {
  if (BufferContains(pt_page)) {
    ++hits_;
    BufferInsert(pt_page);  // touch
    done();
    return;
  }
  ++misses_;
  auto it = inflight_fetches_.find(pt_page);
  if (it != inflight_fetches_.end()) {
    it->second.push_back(std::move(done));
    return;
  }
  inflight_fetches_[pt_page].push_back(std::move(done));
  PtProcessor* pt = pts_[ProcessorOf(pt_page)].get();
  ++pt->lookups;
  // Miss path: the page-table processor locates and interprets the entry,
  // then its disk fetches the page-table page.
  pt->cpu->Submit(opts_.pt_cpu_ms, [this, pt, pt_page] {
    pt->disk->Submit(hw::DiskRequest{
        PtAddr(pt_page), false, 1, [this, pt_page] {
          BufferInsert(pt_page);
          auto waiters = std::move(inflight_fetches_[pt_page]);
          inflight_fetches_.erase(pt_page);
          for (auto& w : waiters) w();
        }});
  });
}

void SimShadow::BeforeRead(txn::TxnId t, uint64_t page,
                           std::function<void()> done) {
  (void)t;
  // The disk address of the data page comes from its page-table entry.
  FetchPtPage(PtPageOf(page), std::move(done));
}

Placement SimShadow::ScrambledPlacement(uint64_t page) const {
  // Copy-on-write relocation has destroyed adjacency: hash the page id to
  // a pseudo-random slot of the data area (stable per page).
  uint64_t h = page * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  const auto& cfg = machine_->config();
  const uint64_t data_pages =
      static_cast<uint64_t>(cfg.data_pages_per_disk());
  Placement pl;
  pl.disk = static_cast<int>(h % static_cast<uint64_t>(cfg.num_data_disks));
  const uint64_t local = (h >> 8) % data_pages;
  const auto ppc = static_cast<uint64_t>(cfg.geometry.pages_per_cylinder());
  pl.addr.cylinder = static_cast<int32_t>(local / ppc);
  pl.addr.slot = static_cast<int32_t>(local % ppc);
  return pl;
}

bool SimShadow::PageIsClustered(uint64_t page) const {
  if (!opts_.clustered) return false;
  if (opts_.cluster_fraction >= 1.0) return true;
  // Stable per-page pseudo-random draw against the clustering fraction.
  uint64_t h = (page + 1) * 0xd1b54a32d192ed03ULL;
  h ^= h >> 32;
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < opts_.cluster_fraction;
}

Placement SimShadow::ReadPlacement(uint64_t page) {
  if (PageIsClustered(page)) return machine_->HomePlacement(page);
  return ScrambledPlacement(page);
}

void SimShadow::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                 std::function<void()> done) {
  // Copy-on-write: the new copy goes to a fresh block.  Under the
  // clustered assumption the allocator found one next to the original; in
  // scrambled mode it is anywhere.
  dirty_pt_pages_[t].insert(PtPageOf(page));
  Placement pl = PageIsClustered(page) ? machine_->HomePlacement(page)
                                       : ScrambledPlacement(page);
  if (Auditor* a = auditor()) {
    a->OnShadowWrite(t, page, pl);
    a->OnPtDirty(t, PtPageOf(page));
  }
  machine_->NoteHomeWrite(t, page);
  machine_->TraceEmit(sim::TraceKind::kShadowWrite, t, page);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, true, 1, std::move(done)});
}

void SimShadow::OnCommit(txn::TxnId t, std::function<void()> done) {
  auto it = dirty_pt_pages_.find(t);
  if (it == dirty_pt_pages_.end() || it->second.empty()) {
    dirty_pt_pages_.erase(t);
    done();
    return;
  }
  // Update the page-table entries of the write set: reread any evicted
  // page-table page, then write the new shadow table pages.
  auto remaining = std::make_shared<int>(static_cast<int>(it->second.size()));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (uint64_t pt_page : it->second) {
    auto finish_write = [this, t, pt_page, remaining, shared_done] {
      PtProcessor* pt = pts_[ProcessorOf(pt_page)].get();
      ++pt_writes_;
      pt->cpu->Submit(opts_.pt_cpu_ms, [pt, t, pt_page, remaining,
                                        shared_done, this] {
        pt->disk->Submit(hw::DiskRequest{
            PtAddr(pt_page), true, 1,
            [this, t, pt_page, remaining, shared_done] {
              if (Auditor* a = auditor()) a->OnPtFlushed(t, pt_page);
              machine_->TraceEmit(sim::TraceKind::kPtWrite, t, pt_page);
              if (--*remaining == 0) (*shared_done)();
            }});
      });
    };
    if (BufferContains(pt_page)) {
      BufferInsert(pt_page);
      finish_write();
    } else {
      ++commit_rereads_;
      FetchPtPage(pt_page, finish_write);
    }
  }
  dirty_pt_pages_.erase(t);
}

void SimShadow::ContributeStats(MachineResult* result) {
  for (size_t i = 0; i < pts_.size(); ++i) {
    result->extra[StrFormat("pt_disk_util_%zu", i)] =
        pts_[i]->disk->Utilization();
  }
  result->extra["pt_buffer_hit_rate"] = BufferHitRate();
  result->extra["pt_commit_rereads"] = static_cast<double>(commit_rereads_);
  result->extra["pt_writes"] = static_cast<double>(pt_writes_);
}

double SimShadow::PtDiskUtilization(int i) const {
  return pts_[static_cast<size_t>(i)]->disk->Utilization();
}

double SimShadow::BufferHitRate() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

namespace {

std::unique_ptr<RecoveryArch> MakeShadowFromConfig(
    const core::ArchConfig& cfg) {
  SimShadowOptions o;
  o.num_pt_processors = cfg.GetInt("pt-processors");
  o.pt_buffer_pages = cfg.GetInt("pt-buffer");
  o.clustered = !cfg.GetBool("scrambled");
  o.cluster_fraction = cfg.GetDouble("cluster-fraction");
  return std::make_unique<SimShadow>(o);
}

core::ArchEntry MakeShadowEntry() {
  core::ArchEntry e;
  e.name = "shadow";
  e.sim_order = 2;
  e.summary = "shadow pages behind a page table on dedicated processors";
  e.description =
      "Every read first consults the page table (cached in a page-table "
      "processor's buffer); updated pages are written copy-on-write to "
      "fresh blocks, and commit atomically flips the dirty page-table "
      "pages to make the shadows live.  Scrambling models the loss of "
      "physical clustering as pages migrate away from home.";
  e.paper_ref = "§3.2.1, §4.2.2";
  e.knobs = {
      {"pt-processors", core::KnobType::kInt, "1", {},
       "page-table processors serving lookups and flips"},
      {"pt-buffer", core::KnobType::kInt, "10", {},
       "page-table pages cached per processor"},
      {"scrambled", core::KnobType::kBool, "0", {},
       "logically adjacent pages are not physically clustered"},
      {"cluster-fraction", core::KnobType::kDouble, "1.0", {},
       "fraction of pages that keep their clustering"},
  };
  e.sim_variants = {
      {"shadow-clustered", {},
       "pages stay clustered; page-table cost only"},
      {"shadow-scrambled", {{"scrambled", "1"}},
       "every read seeks to a scrambled block"},
  };
  e.invariants = {"pt-coherence", "pt-flip"};
  e.make_sim = &MakeShadowFromConfig;
  return e;
}

const core::SimArchRegistrar kShadowRegistrar(MakeShadowEntry());

}  // namespace

void* ArchRegistryAnchorShadow() {
  return const_cast<core::SimArchRegistrar*>(&kShadowRegistrar);
}

}  // namespace dbmr::machine
