// Version-selection recovery architecture for the machine simulator
// (paper §3.2.2.1, §4.2.5).
//
// Two physically adjacent blocks hold the current and shadow copy of every
// page; a read fetches BOTH and applies version selection, doubling the
// transfer per access.  A small stable commit-list write per committing
// transaction provides the commit point.  The paper argues (without
// simulating) that this loses because the machine is I/O-bandwidth bound;
// this architecture lets the claim be measured (bench/ablation_version_select).

#ifndef DBMR_MACHINE_SIM_VERSION_SELECT_H_
#define DBMR_MACHINE_SIM_VERSION_SELECT_H_

#include "machine/machine.h"
#include "machine/recovery_arch.h"

namespace dbmr::machine {

/// Options for version selection.
struct SimVersionSelectOptions {
  /// Paper §4.2.5: "unless the disk heads are augmented with enough
  /// intelligence to perform on-the-fly version selection, the average
  /// time to access a data page will increase."  With smart heads the
  /// drive returns only the current copy (one page per read).
  bool smart_heads = false;
};

/// The version-selection architecture.
class SimVersionSelect : public RecoveryArch {
 public:
  explicit SimVersionSelect(SimVersionSelectOptions options = {})
      : opts_(options) {}

  std::string name() const override {
    return opts_.smart_heads ? "version-select-smart" : "version-select";
  }
  std::string registry_name() const override { return "version-select"; }

  /// Both copies of the page come back in one access — unless the heads
  /// select on the fly.
  int ReadTransferPages() const override {
    return opts_.smart_heads ? 1 : 2;
  }

  void WriteUpdatedPage(txn::TxnId t, uint64_t page,
                        std::function<void()> done) override;
  void OnCommit(txn::TxnId t, std::function<void()> done) override;
  void ContributeStats(MachineResult* result) override;

 private:
  SimVersionSelectOptions opts_;
  uint64_t commit_list_writes_ = 0;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_SIM_VERSION_SELECT_H_
