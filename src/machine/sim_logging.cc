#include "machine/sim_logging.h"

#include <memory>
#include <utility>

#include "core/arch_registry.h"
#include "machine/auditor.h"
#include "sim/trace.h"
#include "util/str.h"

namespace dbmr::machine {

const char* LogSelectName(LogSelect s) {
  switch (s) {
    case LogSelect::kCyclic:
      return "cyclic";
    case LogSelect::kRandom:
      return "random";
    case LogSelect::kQpMod:
      return "QpNo mod TotLp";
    case LogSelect::kTxnMod:
      return "TranNo mod TotLp";
  }
  return "unknown";
}

SimLogging::SimLogging(SimLoggingOptions options) : opts_(options) {
  DBMR_CHECK(opts_.num_log_processors >= 1);
  DBMR_CHECK(opts_.fragments_per_log_page >= 1);
}

SimLogging::~SimLogging() = default;

std::string SimLogging::name() const {
  return StrFormat("logging-x%d-%s", opts_.num_log_processors,
                   opts_.physical ? "physical" : "logical");
}

void SimLogging::Attach(Machine* machine) {
  RecoveryArch::Attach(machine);
  // Derived (not forked mid-setup) so the selection stream is a pure
  // function of the cell seed regardless of how many draws setup made.
  select_rng_ = Rng(machine->config().seed ^ 0xc2b2ae3d27d4eb4fULL);
  if (sim::TraceRing* tr = machine->simulator()->trace()) {
    track_ = tr->RegisterTrack(kLoggingTraceTrack);
  }
  for (int i = 0; i < opts_.num_log_processors; ++i) {
    auto lp = std::make_unique<LogProcessor>();
    lp->disk = std::make_unique<hw::DiskModel>(
        machine->simulator(), StrFormat("log%d", i), opts_.log_geometry,
        hw::DiskKind::kConventional, machine->rng()->Fork());
    lps_.push_back(std::move(lp));
  }
  if (!opts_.route_via_cache) {
    channel_ = std::make_unique<hw::Channel>(
        machine->simulator(), "qp-lp-link", opts_.channel_mb_per_sec);
  }
}

sim::TimeMs SimLogging::ExtraCpu(txn::TxnId t, uint64_t page,
                                 bool is_write) {
  (void)t;
  (void)page;
  // Constructing the log fragment costs query-processor cycles (absorbed
  // by slack capacity unless the QPs are the bottleneck, §4.1.1).
  return is_write ? opts_.fragment_cpu_ms : 0.0;
}

size_t SimLogging::ChooseProcessor(txn::TxnId t) {
  const auto n = static_cast<size_t>(opts_.num_log_processors);
  switch (opts_.select) {
    case LogSelect::kCyclic:
      return cyclic_++ % n;
    case LogSelect::kRandom:
      return static_cast<size_t>(
          select_rng_.UniformInt(0, static_cast<int64_t>(n) - 1));
    case LogSelect::kQpMod: {
      // The producing query processor's number: the machine assigns pages
      // to whichever processor frees first, which cycles through the pool.
      size_t qp = qp_cursor_++ %
                  static_cast<size_t>(machine_->config().num_query_processors);
      return qp % n;
    }
    case LogSelect::kTxnMod:
      return static_cast<size_t>(t % n);
  }
  return 0;
}

void SimLogging::CollectRecoveryData(txn::TxnId t, uint64_t page,
                                     std::function<void()> ready) {
  const size_t lp_idx = ChooseProcessor(t);
  ++undurable_[t];
  if (Auditor* a = auditor()) a->OnLogFragment(t, page);
  if (sim::TraceRing* tr = machine_->trace()) {
    tr->Emit(machine_->simulator()->Now(), track_,
             sim::TraceKind::kLogFragment, t, page);
  }

  if (opts_.route_via_cache) {
    // The fragment is staged in a cache frame until the log processor
    // picks it up; the cache interconnect is fast relative to everything
    // else, so the frame is held only briefly.
    const bool have_frame = machine_->TryTakeFrame();
    const sim::TimeMs staging = 0.5;
    machine_->simulator()->Schedule(
        staging, [this, lp_idx, t, page, have_frame,
                  ready = std::move(ready)]() mutable {
          if (have_frame) machine_->ReturnFrame();
          DeliverFragment(lp_idx, t, page, std::move(ready));
        });
    return;
  }
  channel_->Send(opts_.fragment_bytes,
                 [this, lp_idx, t, page, ready = std::move(ready)]() mutable {
                   DeliverFragment(lp_idx, t, page, std::move(ready));
                 });
}

hw::DiskPageAddr SimLogging::NextLogAddr(LogProcessor* lp) {
  const auto& g = opts_.log_geometry;
  const uint64_t slot = lp->next_slot++;
  hw::DiskPageAddr addr;
  addr.cylinder = static_cast<int32_t>(
      (slot / static_cast<uint64_t>(g.pages_per_cylinder())) %
      static_cast<uint64_t>(g.cylinders));
  addr.slot = static_cast<int32_t>(
      slot % static_cast<uint64_t>(g.pages_per_cylinder()));
  return addr;
}

void SimLogging::DeliverFragment(size_t lp_idx, txn::TxnId t, uint64_t page,
                                 std::function<void()> ready) {
  LogProcessor* lp = lps_[lp_idx].get();

  if (opts_.physical) {
    // Before image and after image: two full log pages, written at once.
    Group group;
    group.fragments = 1;
    group.frags.push_back(Frag{t, page, std::move(ready)});
    group.txn_fragments[t] = 1;
    lp->disk->Submit(hw::DiskRequest{NextLogAddr(lp), true, 1, nullptr});
    lp->disk->Submit(hw::DiskRequest{
        NextLogAddr(lp), true, 1,
        [this, lp, group = std::move(group)]() mutable {
          lp->pages_written += 2;
          OnLogPageWritten(std::move(group));
        }});
    return;
  }

  Group& g = lp->current;
  ++g.fragments;
  g.frags.push_back(Frag{t, page, std::move(ready)});
  ++g.txn_fragments[t];
  if (g.fragments == 1) {
    // First fragment of a fresh page: arm the flush timer so blocked
    // updated pages cannot pin the cache indefinitely.
    const uint64_t gen = lp->group_gen;
    machine_->simulator()->Schedule(
        opts_.group_flush_timeout_ms, [this, lp, gen] {
          if (lp->group_gen == gen) FlushGroup(lp);
        });
  }
  // A commit waiting on this transaction must not sit behind a slow-
  // filling page: force immediately.
  if (g.fragments >= opts_.fragments_per_log_page ||
      commit_waiters_.count(t) > 0) {
    FlushGroup(lp);
  }
}

void SimLogging::FlushGroup(LogProcessor* lp) {
  if (lp->current.fragments == 0) return;
  Group group = std::move(lp->current);
  lp->current = Group{};
  ++lp->group_gen;
  if (sim::TraceRing* tr = machine_->trace()) {
    tr->Emit(machine_->simulator()->Now(), track_, sim::TraceKind::kLogForce,
             static_cast<uint64_t>(group.fragments));
  }
  WriteLogPage(lp, std::move(group));
}

void SimLogging::WriteLogPage(LogProcessor* lp, Group group) {
  lp->disk->Submit(hw::DiskRequest{
      NextLogAddr(lp), true, 1,
      [this, lp, group = std::move(group)]() mutable {
        ++lp->pages_written;
        OnLogPageWritten(std::move(group));
      }});
}

void SimLogging::OnLogPageWritten(Group group) {
  // Durability accounting must complete before any ready fires: a ready
  // callback issues the updated page's home write immediately, and the
  // write-ahead rule requires every fragment of that page to already be
  // stable at that instant.  (Firing readies first — the original order —
  // made the home write race ahead of its own log fragment's bookkeeping.)
  Auditor* a = auditor();
  sim::TraceRing* tr = machine_->trace();
  for (const Frag& f : group.frags) {
    if (a != nullptr) a->OnFragmentDurable(f.t, f.page);
    if (tr != nullptr) {
      tr->Emit(machine_->simulator()->Now(), track_,
               sim::TraceKind::kFragmentDurable, f.t, f.page);
    }
  }
  std::vector<std::function<void()>> commit_dones;
  for (const auto& [t, count] : group.txn_fragments) {
    auto it = undurable_.find(t);
    DBMR_CHECK(it != undurable_.end());
    it->second -= count;
    if (it->second == 0) {
      undurable_.erase(it);
      auto w = commit_waiters_.find(t);
      if (w != commit_waiters_.end()) {
        commit_dones.push_back(std::move(w->second));
        commit_waiters_.erase(w);
      }
    }
  }
  for (Frag& f : group.frags) f.ready();
  for (auto& done : commit_dones) done();
}

void SimLogging::OnCommit(txn::TxnId t, std::function<void()> done) {
  auto it = undurable_.find(t);
  if (it == undurable_.end()) {
    done();
    return;
  }
  // Force every partial log page holding this transaction's fragments;
  // fragments still in transit flush on arrival (DeliverFragment checks
  // commit_waiters_).
  commit_waiters_.emplace(t, std::move(done));
  for (auto& lp : lps_) {
    if (lp->current.txn_fragments.count(t) > 0) FlushGroup(lp.get());
  }
}

void SimLogging::ContributeStats(MachineResult* result) {
  for (size_t i = 0; i < lps_.size(); ++i) {
    result->extra[StrFormat("log_disk_util_%zu", i)] =
        lps_[i]->disk->Utilization();
    result->extra[StrFormat("log_pages_written_%zu", i)] =
        static_cast<double>(lps_[i]->pages_written);
    result->extra[StrFormat("log_disk_queue_highwater_%zu", i)] =
        static_cast<double>(lps_[i]->disk->max_queue_length());
  }
  if (channel_) {
    result->extra["log_channel_util"] = channel_->Utilization();
  }
}

double SimLogging::LogDiskUtilization(int i) const {
  return lps_[static_cast<size_t>(i)]->disk->Utilization();
}

namespace {

std::unique_ptr<RecoveryArch> MakeLoggingFromConfig(
    const core::ArchConfig& cfg) {
  SimLoggingOptions o;
  o.num_log_processors = cfg.GetInt("log-disks");
  o.physical = cfg.GetBool("physical");
  o.route_via_cache = cfg.GetBool("via-cache");
  o.channel_mb_per_sec = cfg.GetDouble("bandwidth");
  const std::string sel = cfg.GetString("select");
  if (sel == "random") {
    o.select = LogSelect::kRandom;
  } else if (sel == "qpmod") {
    o.select = LogSelect::kQpMod;
  } else if (sel == "txnmod") {
    o.select = LogSelect::kTxnMod;
  } else {
    o.select = LogSelect::kCyclic;
  }
  return std::make_unique<SimLogging>(o);
}

core::ArchEntry MakeLoggingEntry() {
  core::ArchEntry e;
  e.name = "logging";
  e.sim_order = 1;
  e.summary = "parallel write-ahead logging on dedicated log disks";
  e.description =
      "Query processors build a log fragment for every updated page and "
      "ship it to one of N log processors, each owning a log disk; the "
      "updated page may go home only after its fragment is stable (the "
      "write-ahead rule), and commit forces the transaction's log tail. "
      "Fragment routing follows a selection policy and travels either over "
      "a dedicated channel or through the disk cache.";
  e.paper_ref = "§3.1, §4.2.1";
  e.trace_track = kLoggingTraceTrack;
  e.knobs = {
      {"log-disks", core::KnobType::kInt, "1", {},
       "log processors, each with its own log disk"},
      {"physical", core::KnobType::kBool, "0", {},
       "physical (before+after image) instead of logical logging"},
      {"select", core::KnobType::kEnum, "cyclic",
       {"cyclic", "random", "qpmod", "txnmod"},
       "log-disk selection policy for fragments"},
      {"via-cache", core::KnobType::kBool, "0", {},
       "route fragments through the disk cache instead of a channel"},
      {"bandwidth", core::KnobType::kDouble, "1.0", {},
       "dedicated QP-to-LP channel bandwidth in MB/s"},
  };
  e.sim_variants = {
      {"logging-cyclic", {{"log-disks", "2"}, {"select", "cyclic"}},
       "two log disks, fragments routed cyclically"},
      {"logging-random", {{"log-disks", "2"}, {"select", "random"}},
       "two log disks, fragments routed at random"},
      {"logging-qpmod", {{"log-disks", "2"}, {"select", "qpmod"}},
       "two log disks, disk = query processor number mod disks"},
      {"logging-txnmod", {{"log-disks", "2"}, {"select", "txnmod"}},
       "two log disks, disk = transaction number mod disks"},
      {"logging-physical", {{"physical", "1"}},
       "before+after image logging on one log disk"},
      {"logging-via-cache", {{"via-cache", "1"}},
       "fragments routed through the disk cache, no channel"},
  };
  e.invariants = {"wal-rule", "wal-commit", "wal-accounting"};
  e.make_sim = &MakeLoggingFromConfig;
  return e;
}

const core::SimArchRegistrar kLoggingRegistrar(MakeLoggingEntry());

}  // namespace

void* ArchRegistryAnchorLogging() {
  return const_cast<core::SimArchRegistrar*>(&kLoggingRegistrar);
}

}  // namespace dbmr::machine
