#include "machine/auditor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/arch_registry.h"
#include "sim/trace.h"
#include "util/str.h"

namespace dbmr::machine {

const std::vector<Auditor::CheckInfo>& Auditor::KnownChecks() {
  static const auto* kChecks = new std::vector<CheckInfo>{
      {"txn-lifecycle",
       "transactions are admitted only when not already committing and end "
       "the run with no unresolved recovery state",
       true},
      {"2pl-growth",
       "no lock is acquired after the commit (shrinking) phase starts",
       true},
      {"2pl-write",
       "recovery data is collected and home writes are issued only under "
       "the page's exclusive lock",
       true},
      {"2pl-commit",
       "commit starts with every write-set lock still held exclusively",
       true},
      {"frame-balance",
       "cache frames stay within [0, capacity] and balance at end of run",
       true},
      {"qp-balance",
       "busy query processors stay within the pool and idle at end of run",
       true},
      {"blocked-balance",
       "pages blocked on recovery-data collection return to zero at end of "
       "run",
       true},
      {"util-bounds",
       "device and query-processor utilizations stay within [0, 1]", true},
      {"wal-rule",
       "no updated page is released for (or issued as) a home write while "
       "a log fragment of it is not yet stable on a log disk",
       false},
      {"wal-commit",
       "commit completes only after every log fragment of the transaction "
       "is on a log disk",
       false},
      {"wal-accounting",
       "durable-fragment notifications never outnumber the fragments "
       "issued",
       false},
      {"pt-coherence",
       "every read targets the page's single live physical block", false},
      {"pt-flip",
       "commit completes only after every dirty page-table page of the "
       "transaction is flushed",
       false},
      {"noredo-undo",
       "an aborted no-redo victim restores every in-place overwrite of "
       "uncommitted data before its locks are released",
       false},
      {"aries-wal-lsn",
       "no data page is written back while its pageLSN exceeds the log's "
       "flushedLSN (the ARIES statement of the WAL rule)",
       false},
      {"aries-clr-chain",
       "every CLR compensates the transaction's newest un-compensated "
       "update and chains undo-next to the one below it; an uncommitted "
       "transaction end leaves no update un-compensated",
       false},
  };
  return *kChecks;
}

void Auditor::SetDeclaredChecks(std::vector<std::string> declared) {
  declared_checks_ = std::move(declared);
  declared_checks_set_ = true;
}

namespace {

/// Publishes the check catalog as the registry's invariant catalog, so the
/// generated architecture docs and the auditor can never disagree on the
/// set of named checks.
const bool kInvariantCatalogRegistered = [] {
  for (const Auditor::CheckInfo& c : Auditor::KnownChecks()) {
    core::ArchRegistry::Global().RegisterInvariant(c.name, c.doc,
                                                   c.universal);
  }
  return true;
}();

}  // namespace

Auditor::Auditor(AuditorOptions opts, sim::Simulator* sim,
                 const txn::LockManager* locks, sim::TraceRing* trace)
    : opts_(std::move(opts)), sim_(sim), locks_(locks), trace_(trace) {
  DBMR_CHECK(sim_ != nullptr && locks_ != nullptr);
}

uint64_t Auditor::PlacementKey(const Placement& pl) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(pl.disk)) << 48) |
         (static_cast<uint64_t>(static_cast<uint32_t>(pl.addr.cylinder))
          << 16) |
         static_cast<uint64_t>(static_cast<uint32_t>(pl.addr.slot));
}

void Auditor::Violate(const char* check, std::string detail) {
  const CheckInfo* info = nullptr;
  for (const CheckInfo& c : KnownChecks()) {
    if (std::strcmp(c.name, check) == 0) {
      info = &c;
      break;
    }
  }
  DBMR_CHECK(info != nullptr);  // every reported check must be catalogued
  if (!info->universal && declared_checks_set_ &&
      std::find(declared_checks_.begin(), declared_checks_.end(), check) ==
          declared_checks_.end()) {
    detail +=
        " [check not declared by this architecture's registry entry — "
        "stale ArchEntry::invariants?]";
  }
  AuditViolation v{check, std::move(detail), sim_->Now()};
  if (!opts_.abort_on_violation) {
    violations_.push_back(std::move(v));
    return;
  }
  std::fprintf(stderr, "\nAUDIT VIOLATION [%s] at t=%.3f ms\n  %s\n",
               v.check.c_str(), v.when, v.detail.c_str());
  if (trace_ != nullptr) {
    std::fprintf(stderr, "--- trace tail (%zu of %llu events) ---\n%s",
                 std::min<size_t>(40, trace_->size()),
                 static_cast<unsigned long long>(trace_->total_emitted()),
                 trace_->Tail(40).c_str());
  }
  if (!opts_.repro_hint.empty()) {
    std::fprintf(stderr, "repro: %s\n", opts_.repro_hint.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

void Auditor::OnAdmit(txn::TxnId t) {
  ++checks_;
  TxnState& s = StateOf(t);
  if (s.committing) {
    Violate("txn-lifecycle",
            StrFormat("txn %llu admitted while still committing",
                      static_cast<unsigned long long>(t)));
  }
}

void Auditor::OnLockAcquired(txn::TxnId t, uint64_t page) {
  ++checks_;
  const TxnState& s = StateOf(t);
  if (s.committing) {
    // 2PL: the shrinking phase begins at commit; no new locks after that.
    Violate("2pl-growth",
            StrFormat("txn %llu acquired lock on page %llu after commit "
                      "started",
                      static_cast<unsigned long long>(t),
                      static_cast<unsigned long long>(page)));
  }
}

void Auditor::OnReadPlacement(uint64_t page, const Placement& pl) {
  ++checks_;
  auto it = live_block_.find(page);
  if (it != live_block_.end() && it->second != PlacementKey(pl)) {
    Violate("pt-coherence",
            StrFormat("read of page %llu targets block %llx but the live "
                      "block is %llx",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(PlacementKey(pl)),
                      static_cast<unsigned long long>(it->second)));
  }
}

void Auditor::OnCollectStart(txn::TxnId t, uint64_t page) {
  ++checks_;
  if (!locks_->Holds(t, page, txn::LockMode::kExclusive)) {
    Violate("2pl-write",
            StrFormat("txn %llu collects recovery data for page %llu "
                      "without holding its exclusive lock",
                      static_cast<unsigned long long>(t),
                      static_cast<unsigned long long>(page)));
  }
}

void Auditor::OnRecoveryStable(txn::TxnId t, uint64_t page) {
  ++checks_;
  TxnState& s = StateOf(t);
  if (s.uses_wal && s.frag_unconsumed[page] <= 0) {
    Violate("wal-rule",
            StrFormat("page %llu of txn %llu released for write-back "
                      "before its log fragment reached a log disk",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(t)));
  }
}

void Auditor::OnHomeWriteIssued(txn::TxnId t, uint64_t page) {
  ++checks_;
  TxnState& s = StateOf(t);
  if (s.uses_wal) {
    int& unconsumed = s.frag_unconsumed[page];
    if (unconsumed <= 0) {
      Violate("wal-rule",
              StrFormat("home write of page %llu issued before txn %llu's "
                        "log fragment for it reached a log disk",
                        static_cast<unsigned long long>(page),
                        static_cast<unsigned long long>(t)));
    } else {
      --unconsumed;
    }
  }
  if (!locks_->Holds(t, page, txn::LockMode::kExclusive)) {
    Violate("2pl-write",
            StrFormat("home write of page %llu issued without txn %llu "
                      "holding its exclusive lock",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(t)));
  }
}

void Auditor::OnCommitStart(txn::TxnId t,
                            const std::unordered_set<uint64_t>& write_set) {
  TxnState& s = StateOf(t);
  s.committing = true;
  for (uint64_t page : write_set) {
    ++checks_;
    if (!locks_->Holds(t, page, txn::LockMode::kExclusive)) {
      Violate("2pl-commit",
              StrFormat("txn %llu entered commit without the exclusive "
                        "lock on written page %llu",
                        static_cast<unsigned long long>(t),
                        static_cast<unsigned long long>(page)));
    }
  }
}

void Auditor::OnCommitDone(txn::TxnId t) {
  ++checks_;
  TxnState& s = StateOf(t);
  int undurable = 0;
  for (const auto& kv : s.frag_pending) undurable += kv.second;
  if (undurable > 0) {
    Violate("wal-commit",
            StrFormat("txn %llu committed with %d log fragment(s) still "
                      "not on a log disk",
                      static_cast<unsigned long long>(t), undurable));
  }
  if (!s.dirty_pt.empty()) {
    Violate("pt-flip",
            StrFormat("txn %llu committed with %zu dirty page-table "
                      "page(s) unflushed",
                      static_cast<unsigned long long>(t),
                      s.dirty_pt.size()));
  }
  // Commit makes the copy-on-write blocks live and the in-place
  // overwrites permanent.
  for (const auto& [page, block] : s.shadow_candidates) {
    live_block_[page] = block;
    candidate_owner_.erase(page);
  }
  txns_.erase(t);
}

void Auditor::OnRestartComplete(txn::TxnId t) {
  ++checks_;
  auto it = txns_.find(t);
  if (it != txns_.end()) {
    TxnState& s = it->second;
    int leaked = 0;
    for (const auto& kv : s.inplace) leaked += kv.second;
    if (leaked > 0) {
      Violate("noredo-undo",
              StrFormat("txn %llu restarted leaving %d in-place "
                        "overwrite(s) of uncommitted data unrestored",
                        static_cast<unsigned long long>(t), leaked));
    }
    for (const auto& kv : s.shadow_candidates) {
      candidate_owner_.erase(kv.first);
    }
    txns_.erase(it);
  }
}

void Auditor::CheckFrames(int free_frames) {
  ++checks_;
  if (free_frames < 0 || free_frames > opts_.cache_frames) {
    Violate("frame-balance",
            StrFormat("free cache frames = %d outside [0, %d]", free_frames,
                      opts_.cache_frames));
  }
}

void Auditor::CheckQps(int busy_qps) {
  ++checks_;
  if (busy_qps < 0 || busy_qps > opts_.num_query_processors) {
    Violate("qp-balance",
            StrFormat("busy query processors = %d outside [0, %d]", busy_qps,
                      opts_.num_query_processors));
  }
}

void Auditor::OnRunEnd(int free_frames, int busy_qps, int blocked_pages) {
  ++checks_;
  if (free_frames != opts_.cache_frames) {
    Violate("frame-balance",
            StrFormat("run ended with %d of %d cache frames free "
                      "(frames leaked or double-returned)",
                      free_frames, opts_.cache_frames));
  }
  if (busy_qps != 0) {
    Violate("qp-balance",
            StrFormat("run ended with %d query processors busy", busy_qps));
  }
  if (blocked_pages != 0) {
    Violate("blocked-balance",
            StrFormat("run ended with %d pages still blocked on recovery "
                      "data",
                      blocked_pages));
  }
  for (const auto& [t, s] : txns_) {
    int undurable = 0;
    for (const auto& kv : s.frag_pending) undurable += kv.second;
    if (undurable > 0 || !s.inplace.empty() || !s.dirty_pt.empty()) {
      Violate("txn-lifecycle",
              StrFormat("run ended with txn %llu carrying unresolved "
                        "recovery state",
                        static_cast<unsigned long long>(t)));
    }
  }
}

void Auditor::CheckResult(const MachineResult& r) {
  constexpr double kTol = 1e-9;
  for (size_t i = 0; i < r.data_disk_util.size(); ++i) {
    ++checks_;
    if (!(r.data_disk_util[i] >= 0.0 && r.data_disk_util[i] <= 1.0 + kTol)) {
      Violate("util-bounds",
              StrFormat("data disk %zu utilization %.6f outside [0, 1]", i,
                        r.data_disk_util[i]));
    }
  }
  ++checks_;
  if (!(r.qp_util >= 0.0 && r.qp_util <= 1.0 + kTol)) {
    Violate("util-bounds",
            StrFormat("query-processor utilization %.6f outside [0, 1]",
                      r.qp_util));
  }
  for (const auto& [key, val] : r.extra) {
    if (key.find("util") == std::string::npos) continue;
    ++checks_;
    if (!(val >= 0.0 && val <= 1.0 + kTol)) {
      Violate("util-bounds",
              StrFormat("extra metric %s = %.6f outside [0, 1]", key.c_str(),
                        val));
    }
  }
}

void Auditor::OnLogFragment(txn::TxnId t, uint64_t page) {
  ++checks_;
  TxnState& s = StateOf(t);
  s.uses_wal = true;
  ++s.frag_pending[page];
}

void Auditor::OnFragmentDurable(txn::TxnId t, uint64_t page) {
  ++checks_;
  auto it = txns_.find(t);
  // A fragment may land after its transaction restarted (the log page was
  // already in flight); that is benign — the state was reset.
  if (it == txns_.end()) return;
  int& n = it->second.frag_pending[page];
  --n;
  if (n < 0) {
    n = 0;
    Violate("wal-accounting",
            StrFormat("more durable notifications than fragments for page "
                      "%llu of txn %llu",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(t)));
  }
  ++it->second.frag_unconsumed[page];
}

void Auditor::OnShadowWrite(txn::TxnId t, uint64_t page, const Placement& pl) {
  ++checks_;
  auto owner = candidate_owner_.find(page);
  if (owner != candidate_owner_.end() && owner->second != t) {
    Violate("pt-coherence",
            StrFormat("txns %llu and %llu hold uncommitted shadow copies "
                      "of page %llu concurrently (lock discipline broken)",
                      static_cast<unsigned long long>(owner->second),
                      static_cast<unsigned long long>(t),
                      static_cast<unsigned long long>(page)));
  }
  candidate_owner_[page] = t;
  StateOf(t).shadow_candidates[page] = PlacementKey(pl);
}

void Auditor::OnPtDirty(txn::TxnId t, uint64_t pt_page) {
  ++checks_;
  StateOf(t).dirty_pt.insert(pt_page);
}

void Auditor::OnPtFlushed(txn::TxnId t, uint64_t pt_page) {
  ++checks_;
  auto it = txns_.find(t);
  if (it != txns_.end()) it->second.dirty_pt.erase(pt_page);
}

void Auditor::OnInPlaceOverwrite(txn::TxnId t, uint64_t page) {
  ++checks_;
  ++StateOf(t).inplace[page];
}

void Auditor::OnOverwriteUndone(txn::TxnId t, uint64_t page) {
  ++checks_;
  auto it = txns_.find(t);
  if (it == txns_.end()) return;
  auto pit = it->second.inplace.find(page);
  if (pit == it->second.inplace.end() || pit->second <= 0) {
    Violate("noredo-undo",
            StrFormat("before image of page %llu restored for txn %llu "
                      "which never overwrote it",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(t)));
    return;
  }
  if (--pit->second == 0) it->second.inplace.erase(pit);
}

void Auditor::OnAriesRestart() {
  ++checks_;
  aries_pending_undo_.clear();
}

void Auditor::OnAriesUpdate(txn::TxnId t, uint64_t lsn) {
  ++checks_;
  aries_pending_undo_[t].push_back(lsn);
}

void Auditor::OnAriesClr(txn::TxnId t, uint64_t undo_next_lsn) {
  ++checks_;
  auto it = aries_pending_undo_.find(t);
  if (it == aries_pending_undo_.end() || it->second.empty()) {
    Violate("aries-clr-chain",
            StrFormat("CLR for txn %llu with no update left to compensate",
                      static_cast<unsigned long long>(t)));
    return;
  }
  it->second.pop_back();
  const uint64_t expected = it->second.empty() ? 0 : it->second.back();
  if (undo_next_lsn != expected) {
    Violate("aries-clr-chain",
            StrFormat("CLR for txn %llu carries undo-next %llu, expected "
                      "%llu (the update below the one it compensates)",
                      static_cast<unsigned long long>(t),
                      static_cast<unsigned long long>(undo_next_lsn),
                      static_cast<unsigned long long>(expected)));
  }
}

void Auditor::OnAriesTxnEnd(txn::TxnId t, bool committed) {
  ++checks_;
  auto it = aries_pending_undo_.find(t);
  if (it == aries_pending_undo_.end()) return;
  if (!committed && !it->second.empty()) {
    Violate("aries-clr-chain",
            StrFormat("txn %llu ended uncommitted with %zu update(s) never "
                      "compensated by a CLR",
                      static_cast<unsigned long long>(t),
                      it->second.size()));
  }
  aries_pending_undo_.erase(it);
}

void Auditor::OnAriesWriteBack(uint64_t page, uint64_t page_lsn,
                               uint64_t flushed_lsn) {
  ++checks_;
  if (page_lsn > flushed_lsn) {
    Violate("aries-wal-lsn",
            StrFormat("page %llu written back with pageLSN %llu > "
                      "flushedLSN %llu",
                      static_cast<unsigned long long>(page),
                      static_cast<unsigned long long>(page_lsn),
                      static_cast<unsigned long long>(flushed_lsn)));
  }
}

}  // namespace dbmr::machine
