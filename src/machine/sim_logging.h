// Parallel-logging recovery architecture for the machine simulator
// (paper §3.1, §4.1).
//
// N log processors, each with a conventional log disk.  Query processors
// emit a log fragment per updated page; the fragment travels either over a
// dedicated interconnect of configurable bandwidth or through the disk
// cache (occupying a frame in transit).  The chosen log processor
// assembles fragments into log pages (logical logging) or writes full
// before/after image pages immediately (physical logging).  The
// write-ahead rule holds an updated page in the cache until the log page
// carrying its fragment is on the log disk; commit forces the partial log
// pages holding the transaction's fragments.

#ifndef DBMR_MACHINE_SIM_LOGGING_H_
#define DBMR_MACHINE_SIM_LOGGING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/channel.h"
#include "hw/disk.h"
#include "machine/machine.h"
#include "machine/recovery_arch.h"

namespace dbmr::machine {

/// Log-processor selection policies (paper §4.1.2).
enum class LogSelect {
  kCyclic,
  kRandom,
  kQpMod,   ///< producing query processor's number mod #log processors
  kTxnMod,  ///< transaction number mod #log processors
};

const char* LogSelectName(LogSelect s);

/// Options for the logging architecture.
struct SimLoggingOptions {
  int num_log_processors = 1;
  /// Logical: fragments assembled into log pages.  Physical: every update
  /// writes its full before and after image pages (paper §4.1.2, Table 3).
  bool physical = false;
  LogSelect select = LogSelect::kCyclic;
  /// Route fragments through the disk cache instead of a dedicated
  /// interconnect (paper §4.1.3).
  bool route_via_cache = false;
  double channel_mb_per_sec = 1.0;
  int fragment_bytes = 200;
  /// Fragments that fill one 4K log page in logical mode.
  int fragments_per_log_page = 20;
  /// Extra query-processor time to construct a fragment.
  sim::TimeMs fragment_cpu_ms = 2.0;
  /// A partially filled log page is forced after this long — the paper's
  /// back-end controller similarly asks the log processor to flush when a
  /// blocked updated page must leave the cache.
  sim::TimeMs group_flush_timeout_ms = 500.0;
  hw::DiskGeometry log_geometry = hw::Ibm3350Geometry();
};

/// Deterministic-trace track the logging architecture emits on; carried by
/// its core::ArchRegistry entry so the catalog and the emitter agree.
inline constexpr const char kLoggingTraceTrack[] = "wal";

/// The parallel-logging architecture.
class SimLogging : public RecoveryArch {
 public:
  explicit SimLogging(SimLoggingOptions options = {});
  ~SimLogging() override;

  std::string name() const override;
  std::string registry_name() const override { return "logging"; }
  void Attach(Machine* machine) override;
  sim::TimeMs ExtraCpu(txn::TxnId t, uint64_t page, bool is_write) override;
  void CollectRecoveryData(txn::TxnId t, uint64_t page,
                           std::function<void()> ready) override;
  void OnCommit(txn::TxnId t, std::function<void()> done) override;
  void ContributeStats(MachineResult* result) override;

  /// Utilization of log disk `i` (tests, Table 2).
  double LogDiskUtilization(int i) const;

 private:
  /// One fragment awaiting its carrying log page; `ready` releases the
  /// updated page for write-back once the log page is on disk.
  struct Frag {
    txn::TxnId t = 0;
    uint64_t page = 0;
    std::function<void()> ready;
  };
  struct Group {
    int fragments = 0;
    std::vector<Frag> frags;
    std::unordered_map<txn::TxnId, int> txn_fragments;
  };
  struct LogProcessor {
    std::unique_ptr<hw::DiskModel> disk;
    Group current;
    uint64_t group_gen = 0;  // bumps when the current group flushes
    uint64_t next_slot = 0;  // sequential log-page placement
    uint64_t pages_written = 0;
  };

  size_t ChooseProcessor(txn::TxnId t);
  void DeliverFragment(size_t lp_idx, txn::TxnId t, uint64_t page,
                       std::function<void()> ready);
  void FlushGroup(LogProcessor* lp);
  void WriteLogPage(LogProcessor* lp, Group group);
  void OnLogPageWritten(Group group);
  hw::DiskPageAddr NextLogAddr(LogProcessor* lp);

  SimLoggingOptions opts_;
  std::vector<std::unique_ptr<LogProcessor>> lps_;
  std::unique_ptr<hw::Channel> channel_;
  size_t cyclic_ = 0;
  size_t qp_cursor_ = 0;
  /// Private stream for LogSelect::kRandom, seeded purely from the machine
  /// seed: drawing from the machine's main Rng would entangle log-processor
  /// selection with workload/backoff draws and break trace reproducibility.
  Rng select_rng_;
  uint16_t track_ = 0;  // trace track ("wal")
  /// Fragments of each transaction not yet on a log disk.
  std::unordered_map<txn::TxnId, int> undurable_;
  /// Commit waiters blocked on their last fragments.
  std::unordered_map<txn::TxnId, std::function<void()>> commit_waiters_;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_SIM_LOGGING_H_
