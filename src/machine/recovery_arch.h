// Interface between the database-machine simulator and a recovery
// architecture (paper §3).
//
// The machine drives each page of a transaction through
//   read -> query-processor processing -> [if updated] collect recovery
//   data -> write back -> ... -> commit protocol
// and the architecture intercepts the stages it changes: a page-table
// lookup before the read (shadow), extra CPU during processing
// (differential files), write-ahead blocking before the write-back
// (logging), redirected writes (overwriting, shadow), and the commit
// protocol itself.

#ifndef DBMR_MACHINE_RECOVERY_ARCH_H_
#define DBMR_MACHINE_RECOVERY_ARCH_H_

#include <functional>
#include <string>

#include "machine/config.h"
#include "sim/time.h"
#include "txn/types.h"

namespace dbmr::machine {

class Auditor;
class Machine;

/// A pluggable recovery architecture.
class RecoveryArch {
 public:
  virtual ~RecoveryArch() = default;

  /// Architecture name for reports; may be decorated with the active
  /// options ("logging-x2-logical", "shadow-1pt-buf10", ...).
  virtual std::string name() const = 0;

  /// Stable family name of this architecture's core::ArchRegistry entry
  /// ("bare", "logging", "shadow", ...), never decorated with options.
  virtual std::string registry_name() const { return name(); }

  /// Called once before the run; the machine outlives the architecture's
  /// use of it.  Architectures allocate their extra devices here.
  virtual void Attach(Machine* machine) { machine_ = machine; }

  /// Preamble before a data-page read may be issued (e.g. the shadow
  /// architecture's page-table lookup).  Must invoke `done` exactly once
  /// (possibly immediately).
  virtual void BeforeRead(txn::TxnId t, uint64_t page,
                          std::function<void()> done) {
    (void)t;
    (void)page;
    done();
  }

  /// Physical location a read of `page` goes to; default is the home
  /// placement (the shadow architecture's scrambled mode randomizes it).
  virtual Placement ReadPlacement(uint64_t page);

  /// Blocks transferred by one read of `page` (version selection reads
  /// both copies: 2).
  virtual int ReadTransferPages() const { return 1; }

  /// Extra query-processor time to process this page (differential files:
  /// set union/difference work).
  virtual sim::TimeMs ExtraCpu(txn::TxnId t, uint64_t page, bool is_write) {
    (void)t;
    (void)page;
    (void)is_write;
    return 0.0;
  }

  /// Collects recovery data for an updated page (build a log fragment,
  /// save a shadow, ...).  Must invoke `ready` exactly once when the page
  /// is allowed to be written to disk — the write-ahead rule.
  virtual void CollectRecoveryData(txn::TxnId t, uint64_t page,
                                   std::function<void()> ready) {
    (void)t;
    (void)page;
    ready();
  }

  /// Writes the updated page to disk and invokes `done` when its
  /// stable-storage destiny (for the completion-time metric) is resolved.
  /// The default writes the page to its home placement.
  virtual void WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                std::function<void()> done);

  /// Commit protocol after every page is processed and written (force the
  /// log tail, flip the page table, overwrite shadows, ...).
  virtual void OnCommit(txn::TxnId t, std::function<void()> done) {
    (void)t;
    done();
  }

  /// A deadlock victim is about to re-run from its first page; drop any
  /// per-transaction recovery state collected so far (the paper's
  /// scheduler aborts the victim, which discards its recovery data) and
  /// invoke `done` exactly once when the abort is complete.  Architectures
  /// whose abort needs I/O (no-redo overwriting must restore before
  /// images) invoke it after that I/O; the machine keeps the victim's
  /// locks until then.
  virtual void OnRestart(txn::TxnId t, std::function<void()> done) {
    (void)t;
    done();
  }

  /// Adds architecture-specific metrics to the result.
  virtual void ContributeStats(MachineResult* result) { (void)result; }

 protected:
  /// The machine's invariant auditor, or null when auditing is off.
  /// Architectures report WAL / page-table / undo transitions here.
  Auditor* auditor() const;

  Machine* machine_ = nullptr;
};

/// The bare machine: no recovery data collected at all (paper's baseline).
class BareArch : public RecoveryArch {
 public:
  std::string name() const override { return "bare"; }
};

/// Link anchors for the registry registrars.  Each sim_*.cc (and
/// sim_bare.cc) holds a file-scope core::SimArchRegistrar whose constructor
/// registers the architecture in core::ArchRegistry at program start — but
/// those objects live in a static archive, so their translation units are
/// only extracted if something references a symbol in them.
/// EnsureSimArchsLinked() (defined in machine.cc, which every machine user
/// pulls in) references one anchor per translation unit, forcing the
/// registrars into any binary that links the machine library.  Calling it
/// at runtime is a cheap no-op; binaries that never touch machine.cc
/// otherwise (e.g. dbmr_catalog) call it explicitly.
void* ArchRegistryAnchorBare();
void* ArchRegistryAnchorLogging();
void* ArchRegistryAnchorShadow();
void* ArchRegistryAnchorOverwrite();
void* ArchRegistryAnchorVersionSelect();
void* ArchRegistryAnchorDifferential();
void EnsureSimArchsLinked();

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_RECOVERY_ARCH_H_
