// Registry entry for the bare machine (BareArch is header-only; this
// translation unit exists to give it a registrar and a link anchor like
// every other architecture).

#include <memory>

#include "core/arch_registry.h"
#include "machine/recovery_arch.h"

namespace dbmr::machine {

namespace {

std::unique_ptr<RecoveryArch> MakeBareFromConfig(const core::ArchConfig&) {
  return std::make_unique<BareArch>();
}

core::ArchEntry MakeBareEntry() {
  core::ArchEntry e;
  e.name = "bare";
  e.sim_order = 0;
  e.summary = "no recovery data collected at all (the paper's baseline)";
  e.description =
      "The unmodified database machine: pages are read, processed, and "
      "written home with no recovery data collected anywhere.  Every "
      "other architecture's cost is measured as the slowdown relative to "
      "this baseline.";
  e.paper_ref = "§2, §4.1";
  e.sim_variants = {
      {"bare", {}, "the baseline machine"},
  };
  e.make_sim = &MakeBareFromConfig;
  return e;
}

const core::SimArchRegistrar kBareRegistrar(MakeBareEntry());

}  // namespace

void* ArchRegistryAnchorBare() {
  return const_cast<core::SimArchRegistrar*>(&kBareRegistrar);
}

}  // namespace dbmr::machine
