#include "machine/sim_differential.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/arch_registry.h"
#include "util/str.h"

namespace dbmr::machine {

SimDifferential::SimDifferential(SimDifferentialOptions options)
    : opts_(options) {
  DBMR_CHECK(opts_.diff_size > 0.0 && opts_.diff_size < 1.0);
  DBMR_CHECK(opts_.output_fraction > 0.0 && opts_.output_fraction <= 1.0);
}

std::string SimDifferential::name() const {
  return StrFormat("differential-%s-%d%%",
                   opts_.optimal ? "optimal" : "basic",
                   static_cast<int>(opts_.diff_size * 100 + 0.5));
}

sim::TimeMs SimDifferential::SetDiffCpu() const {
  // A set-difference touches every tuple of the D pages involved: linear
  // in the differential size.
  return opts_.setdiff_cpu_ms_at_10pct * (opts_.diff_size / 0.10);
}

double SimDifferential::HitFraction() const {
  // Larger differential files qualify more pages; empirically the paper's
  // Table 11 degradation tracks a square-root growth.
  return std::min(1.0, opts_.hit_fraction_at_10pct *
                           std::sqrt(opts_.diff_size / 0.10));
}

void SimDifferential::BeforeRead(txn::TxnId t, uint64_t page,
                                 std::function<void()> done) {
  (void)t;
  // Reading a base page drags in A and D pages proportionally to the
  // differential size.  These are extra disk traffic processed together
  // with the base page; the main read is not serialized behind them.
  const Placement home = machine_->HomePlacement(page);
  for (int i = 0; i < 2; ++i) {  // one trial each for A and D
    if (machine_->rng()->Bernoulli(opts_.diff_size)) {
      ++extra_reads_;
      const uint64_t slot = static_cast<uint64_t>(machine_->rng()->UniformInt(
          0, machine_->config().reserved_cylinders *
                     machine_->config().geometry.pages_per_cylinder() -
                 1));
      Placement diff = machine_->ScratchPlacement(home.disk, slot);
      machine_->data_disk(diff.disk)->Submit(
          hw::DiskRequest{diff.addr, false, 1, nullptr});
    }
  }
  done();
}

sim::TimeMs SimDifferential::ExtraCpu(txn::TxnId t, uint64_t page,
                                      bool is_write) {
  (void)t;
  (void)page;
  (void)is_write;
  ++pages_seen_;
  if (!opts_.optimal) {
    ++setdiffs_;
    return SetDiffCpu();
  }
  // Optimal: the scan runs first; the set-difference only happens when it
  // produced at least one qualifying tuple.
  if (machine_->rng()->Bernoulli(HitFraction())) {
    ++setdiffs_;
    return SetDiffCpu();
  }
  return 0.0;
}

Status SimDifferential::WriteOutputPage(txn::TxnId t, uint64_t near_page,
                                        std::function<void()> done) {
  if (a_cursor_.empty()) {
    a_cursor_.assign(static_cast<size_t>(machine_->num_data_disks()), 0);
  }
  const Placement home = machine_->HomePlacement(near_page);
  Placement a = machine_->ScratchPlacement(
      home.disk, a_cursor_[static_cast<size_t>(home.disk)]++);
  ++output_pages_;
  ++outputs_since_merge_;
  machine_->NoteHomeWrite(t, near_page);
  machine_->data_disk(a.disk)->Submit(
      hw::DiskRequest{a.addr, true, 1, std::move(done)});
  MaybeStartMerge();
  return Status::OK();
}

void SimDifferential::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                       std::function<void()> done) {
  // Updates append tuples to the A file: only a fraction of an output
  // page materializes per updated page.
  double& acc =
      opts_.per_txn_fragmentation ? txn_output_acc_[t] : output_acc_;
  acc += opts_.output_fraction;
  txn_last_page_[t] = page;
  if (acc < 1.0) {
    done();
    return;
  }
  acc -= 1.0;
  (void)WriteOutputPage(t, page, std::move(done));
}

void SimDifferential::OnCommit(txn::TxnId t, std::function<void()> done) {
  // Fragmentation: whatever partial output page the transaction
  // accumulated is written out at commit (§4.3.2).
  auto acc = txn_output_acc_.find(t);
  const auto near = txn_last_page_.find(t);
  if (!opts_.per_txn_fragmentation || acc == txn_output_acc_.end() ||
      acc->second <= 0.0 || near == txn_last_page_.end()) {
    if (acc != txn_output_acc_.end()) txn_output_acc_.erase(acc);
    if (near != txn_last_page_.end()) txn_last_page_.erase(near);
    done();
    return;
  }
  const uint64_t near_page = near->second;
  txn_output_acc_.erase(acc);
  txn_last_page_.erase(near);
  (void)WriteOutputPage(t, near_page, std::move(done));
}

void SimDifferential::MaybeStartMerge() {
  if (opts_.merge_every_output_pages <= 0 ||
      outputs_since_merge_ <
          static_cast<uint64_t>(opts_.merge_every_output_pages)) {
    return;
  }
  // Fold the accumulated differential pages into the base file: read each
  // A/D page plus a slice of B, rewrite the slice.  The traffic competes
  // with regular transaction processing on the data disks — the cost the
  // paper chose not to model.
  const uint64_t diff_pages = outputs_since_merge_;
  outputs_since_merge_ = 0;
  ++merges_;
  Rng* rng = machine_->rng();
  for (uint64_t i = 0; i < diff_pages; ++i) {
    const int disk = static_cast<int>(
        rng->UniformInt(0, machine_->num_data_disks() - 1));
    Placement d = machine_->ScratchPlacement(
        disk, static_cast<uint64_t>(rng->UniformInt(
                  0, machine_->config().reserved_cylinders *
                             machine_->config().geometry
                                 .pages_per_cylinder() -
                         1)));
    machine_->data_disk(d.disk)->Submit(
        hw::DiskRequest{d.addr, false, 1, nullptr});
    ++merge_ios_;
    const auto base_pages =
        static_cast<uint64_t>(opts_.merge_base_pages_per_diff_page);
    for (uint64_t b = 0; b < base_pages; ++b) {
      const uint64_t page = static_cast<uint64_t>(rng->UniformInt(
          0, static_cast<int64_t>(machine_->config().db_pages) - 1));
      Placement home = machine_->HomePlacement(page);
      machine_->data_disk(home.disk)->Submit(
          hw::DiskRequest{home.addr, b % 2 == 0 ? false : true, 1,
                          nullptr});
      ++merge_ios_;
    }
  }
}

void SimDifferential::ContributeStats(MachineResult* result) {
  result->extra["diff_extra_reads"] = static_cast<double>(extra_reads_);
  result->extra["diff_output_pages"] = static_cast<double>(output_pages_);
  result->extra["diff_merges"] = static_cast<double>(merges_);
  result->extra["diff_merge_ios"] = static_cast<double>(merge_ios_);
  result->extra["diff_setdiff_fraction"] =
      pages_seen_ == 0 ? 0.0
                       : static_cast<double>(setdiffs_) /
                             static_cast<double>(pages_seen_);
}

namespace {

std::unique_ptr<RecoveryArch> MakeDifferentialFromConfig(
    const core::ArchConfig& cfg) {
  SimDifferentialOptions o;
  o.diff_size = cfg.GetDouble("diff-size");
  o.output_fraction = cfg.GetDouble("output-fraction");
  o.optimal = !cfg.GetBool("basic");
  o.merge_every_output_pages = cfg.GetInt("merge-every");
  return std::make_unique<SimDifferential>(o);
}

core::ArchEntry MakeDifferentialEntry() {
  core::ArchEntry e;
  e.name = "differential";
  e.sim_order = 5;
  e.summary = "differential files: reads merge B with additions/deletions";
  e.description =
      "The base file B is never updated in place; updates append to an "
      "additions file A (deletions to D), so recovery discards A and D "
      "back to the last dump.  Query processing pays set union/difference "
      "CPU per page — in full under basic query processing, only for the "
      "output fraction under optimal — and a merge policy can fold A and "
      "D back into B periodically.";
  e.paper_ref = "§3.3, §4.2.5";
  e.knobs = {
      {"diff-size", core::KnobType::kDouble, "0.10", {},
       "size of A and D relative to B"},
      {"output-fraction", core::KnobType::kDouble, "0.10", {},
       "fraction of processed pages that produce output"},
      {"basic", core::KnobType::kBool, "0", {},
       "basic instead of optimal query processing"},
      {"merge-every", core::KnobType::kInt, "0", {},
       "fold A/D into B every N output pages (0 = never)"},
  };
  e.sim_variants = {
      {"differential", {}, "optimal query processing, no merging"},
  };
  e.make_sim = &MakeDifferentialFromConfig;
  return e;
}

const core::SimArchRegistrar kDifferentialRegistrar(MakeDifferentialEntry());

}  // namespace

void* ArchRegistryAnchorDifferential() {
  return const_cast<core::SimArchRegistrar*>(&kDifferentialRegistrar);
}

}  // namespace dbmr::machine
