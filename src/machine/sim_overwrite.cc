#include "machine/sim_overwrite.h"

#include <memory>
#include <utility>

#include "core/arch_registry.h"
#include "machine/auditor.h"
#include "sim/trace.h"
#include "util/str.h"

namespace dbmr::machine {

SimOverwrite::SimOverwrite(SimOverwriteMode mode) : mode_(mode) {}

std::string SimOverwrite::name() const {
  return mode_ == SimOverwriteMode::kNoUndo ? "overwrite-noundo"
                                            : "overwrite-noredo";
}

Placement SimOverwrite::AllocScratch(int disk) {
  if (scratch_cursor_.empty()) {
    scratch_cursor_.assign(
        static_cast<size_t>(machine_->num_data_disks()), 0);
  }
  return machine_->ScratchPlacement(
      disk, scratch_cursor_[static_cast<size_t>(disk)]++);
}

void SimOverwrite::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                    std::function<void()> done) {
  const Placement home = machine_->HomePlacement(page);
  const Placement scratch = AllocScratch(home.disk);

  if (mode_ == SimOverwriteMode::kNoUndo) {
    // Current copy to scratch now; shadow overwritten at commit.
    pending_[t].emplace_back(page, scratch);
    ++scratch_writes_;
    machine_->data_disk(scratch.disk)->Submit(
        hw::DiskRequest{scratch.addr, true, 1, std::move(done)});
    return;
  }

  // kNoRedo: save the before image to scratch, then overwrite the home
  // location in place.  Record the pair so an abort can put the before
  // image back.
  ++scratch_writes_;
  machine_->data_disk(scratch.disk)->Submit(hw::DiskRequest{
      scratch.addr, true, 1,
      [this, t, page, home, scratch, done = std::move(done)]() mutable {
        ++home_writes_;
        overwritten_[t].push_back(Undo{page, scratch, home});
        if (Auditor* a = auditor()) a->OnInPlaceOverwrite(t, page);
        machine_->NoteHomeWrite(t, page);
        machine_->data_disk(home.disk)->Submit(
            hw::DiskRequest{home.addr, true, 1, std::move(done)});
      }});
}

void SimOverwrite::OnCommit(txn::TxnId t, std::function<void()> done) {
  // Commit makes the no-redo in-place overwrites permanent; their saved
  // before images are dead.
  overwritten_.erase(t);
  auto it = pending_.find(t);
  if (it == pending_.end() || it->second.empty()) {
    pending_.erase(t);
    done();
    return;
  }
  // No-undo commit: read every updated page back from scratch (parallel
  // drives can take a whole scratch cylinder in one access), then
  // overwrite the shadows at home; locks are held throughout.
  auto pages = std::move(it->second);
  pending_.erase(it);
  auto remaining = std::make_shared<int>(static_cast<int>(pages.size()));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (auto& [page, scratch] : pages) {
    ++scratch_reads_;
    const uint64_t p = page;
    machine_->data_disk(scratch.disk)->Submit(hw::DiskRequest{
        scratch.addr, false, 1, [this, t, p, remaining, shared_done] {
          const Placement home = machine_->HomePlacement(p);
          ++home_writes_;
          machine_->NoteHomeWrite(t, p);
          machine_->data_disk(home.disk)->Submit(hw::DiskRequest{
              home.addr, true, 1, [remaining, shared_done] {
                if (--*remaining == 0) (*shared_done)();
              }});
        }});
  }
}

void SimOverwrite::OnRestart(txn::TxnId t, std::function<void()> done) {
  pending_.erase(t);
  auto it = overwritten_.find(t);
  if (it == overwritten_.end() || it->second.empty()) {
    overwritten_.erase(t);
    done();
    return;
  }
  // No-redo abort: the home locations hold uncommitted data.  Read each
  // saved before image back from scratch and overwrite the home location
  // with it; the machine keeps the victim's locks until `done` fires, so
  // no other transaction can observe a half-undone page.
  auto undos = std::move(it->second);
  overwritten_.erase(it);
  auto remaining = std::make_shared<int>(static_cast<int>(undos.size()));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const Undo& u : undos) {
    ++undo_reads_;
    machine_->data_disk(u.scratch.disk)->Submit(hw::DiskRequest{
        u.scratch.addr, false, 1, [this, t, u, remaining, shared_done] {
          ++undo_writes_;
          machine_->NotePhysicalWrite();
          machine_->TraceEmit(sim::TraceKind::kUndoRestore, t, u.page);
          machine_->data_disk(u.home.disk)->Submit(hw::DiskRequest{
              u.home.addr, true, 1,
              [this, t, u, remaining, shared_done] {
                if (Auditor* a = auditor()) a->OnOverwriteUndone(t, u.page);
                if (--*remaining == 0) (*shared_done)();
              }});
        }});
  }
}

void SimOverwrite::ContributeStats(MachineResult* result) {
  result->extra["scratch_writes"] = static_cast<double>(scratch_writes_);
  result->extra["scratch_reads"] = static_cast<double>(scratch_reads_);
  result->extra["home_overwrites"] = static_cast<double>(home_writes_);
  result->extra["undo_reads"] = static_cast<double>(undo_reads_);
  result->extra["undo_writes"] = static_cast<double>(undo_writes_);
}

namespace {

std::unique_ptr<RecoveryArch> MakeOverwriteFromConfig(
    const core::ArchConfig& cfg) {
  const SimOverwriteMode mode = cfg.GetString("mode") == "noredo"
                                    ? SimOverwriteMode::kNoRedo
                                    : SimOverwriteMode::kNoUndo;
  return std::make_unique<SimOverwrite>(mode);
}

core::ArchEntry MakeOverwriteEntry() {
  core::ArchEntry e;
  e.name = "overwrite";
  e.sim_order = 3;
  e.summary = "in-place overwriting with intention lists or before images";
  e.description =
      "No-undo defers updates to a scratch intention list and applies it "
      "home after commit (redo on restart); no-redo saves before images "
      "and overwrites home in place before commit, so an aborting victim "
      "must restore every before image before its locks are released.";
  e.paper_ref = "§3.2.2.2, §4.2.4";
  e.knobs = {
      {"mode", core::KnobType::kEnum, "noundo", {"noundo", "noredo"},
       "no-undo (deferred updates) or no-redo (before images)"},
  };
  e.sim_variants = {
      {"overwrite-noundo", {{"mode", "noundo"}},
       "deferred updates, redo from the intention list"},
      {"overwrite-noredo", {{"mode", "noredo"}},
       "in-place overwrites, undo from before images"},
  };
  e.invariants = {"noredo-undo"};
  e.make_sim = &MakeOverwriteFromConfig;
  return e;
}

const core::SimArchRegistrar kOverwriteRegistrar(MakeOverwriteEntry());

}  // namespace

void* ArchRegistryAnchorOverwrite() {
  return const_cast<core::SimArchRegistrar*>(&kOverwriteRegistrar);
}

}  // namespace dbmr::machine
