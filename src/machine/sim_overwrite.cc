#include "machine/sim_overwrite.h"

#include <memory>
#include <utility>

#include "util/str.h"

namespace dbmr::machine {

SimOverwrite::SimOverwrite(SimOverwriteMode mode) : mode_(mode) {}

std::string SimOverwrite::name() const {
  return mode_ == SimOverwriteMode::kNoUndo ? "overwrite-noundo"
                                            : "overwrite-noredo";
}

Placement SimOverwrite::AllocScratch(int disk) {
  if (scratch_cursor_.empty()) {
    scratch_cursor_.assign(
        static_cast<size_t>(machine_->num_data_disks()), 0);
  }
  return machine_->ScratchPlacement(
      disk, scratch_cursor_[static_cast<size_t>(disk)]++);
}

void SimOverwrite::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                    std::function<void()> done) {
  const Placement home = machine_->HomePlacement(page);
  const Placement scratch = AllocScratch(home.disk);

  if (mode_ == SimOverwriteMode::kNoUndo) {
    // Current copy to scratch now; shadow overwritten at commit.
    pending_[t].emplace_back(page, scratch);
    ++scratch_writes_;
    machine_->data_disk(scratch.disk)->Submit(
        hw::DiskRequest{scratch.addr, true, 1, std::move(done)});
    return;
  }

  // kNoRedo: save the shadow (already in the cache) to scratch, then
  // overwrite the home location in place.
  ++scratch_writes_;
  machine_->data_disk(scratch.disk)->Submit(hw::DiskRequest{
      scratch.addr, true, 1, [this, t, home, done = std::move(done)]() mutable {
        ++home_writes_;
        machine_->data_disk(home.disk)->Submit(hw::DiskRequest{
            home.addr, true, 1, [this, t, done = std::move(done)] {
              machine_->NoteHomeWrite(t);
              done();
            }});
      }});
}

void SimOverwrite::OnCommit(txn::TxnId t, std::function<void()> done) {
  auto it = pending_.find(t);
  if (it == pending_.end() || it->second.empty()) {
    pending_.erase(t);
    done();
    return;
  }
  // No-undo commit: read every updated page back from scratch (parallel
  // drives can take a whole scratch cylinder in one access), then
  // overwrite the shadows at home; locks are held throughout.
  auto pages = std::move(it->second);
  pending_.erase(it);
  auto remaining = std::make_shared<int>(static_cast<int>(pages.size()));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (auto& [page, scratch] : pages) {
    ++scratch_reads_;
    const uint64_t p = page;
    machine_->data_disk(scratch.disk)->Submit(hw::DiskRequest{
        scratch.addr, false, 1, [this, t, p, remaining, shared_done] {
          const Placement home = machine_->HomePlacement(p);
          ++home_writes_;
          machine_->data_disk(home.disk)->Submit(hw::DiskRequest{
              home.addr, true, 1, [this, t, remaining, shared_done] {
                machine_->NoteHomeWrite(t);
                if (--*remaining == 0) (*shared_done)();
              }});
        }});
  }
}

void SimOverwrite::ContributeStats(MachineResult* result) {
  result->extra["scratch_writes"] = static_cast<double>(scratch_writes_);
  result->extra["scratch_reads"] = static_cast<double>(scratch_reads_);
  result->extra["home_overwrites"] = static_cast<double>(home_writes_);
}

}  // namespace dbmr::machine
