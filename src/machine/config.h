// Configuration and result types for the database-machine simulator.

#ifndef DBMR_MACHINE_CONFIG_H_
#define DBMR_MACHINE_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/disk.h"
#include "hw/disk_geometry.h"
#include "util/stats.h"

namespace dbmr::sim {
class TraceRing;
}

namespace dbmr::machine {

/// Auditing defaults on wherever asserts are on (debug builds) and off in
/// release builds, so benchmarks pay nothing; MachineConfig::audit
/// overrides either way.
#ifdef NDEBUG
inline constexpr bool kAuditByDefault = false;
#else
inline constexpr bool kAuditByDefault = true;
#endif

/// Physical location of a logical page: which data disk and where on it.
struct Placement {
  int disk = 0;
  hw::DiskPageAddr addr;
};

/// The database machine of §2/§4: query processors, a page-addressable
/// disk cache managed by the back-end controller, data disks, and an I/O
/// processor (implicit in the disk queues).
struct MachineConfig {
  /// Paper baseline: 25 VAX 11/750-class query processors.
  int num_query_processors = 25;
  /// Paper baseline: 100 frames of 4K bytes.
  int cache_frames = 100;
  /// Paper baseline: 2 data disks (IBM 3350 class).
  int num_data_disks = 2;
  hw::DiskKind disk_kind = hw::DiskKind::kConventional;
  hw::DiskGeometry geometry = hw::Ibm3350Geometry();
  /// Concurrently admitted transactions (multiprogramming level).
  int mpl = 3;
  /// CPU time for a query processor to process one 4K data page.
  sim::TimeMs cpu_ms_per_page = 45.0;
  /// Logical database size in pages; must fit the unreserved data area.
  uint64_t db_pages = 120000;
  /// Cylinders at the end of each drive reserved for recovery structures
  /// (scratch areas, differential files).
  int reserved_cylinders = 20;
  /// Consecutive reads the back-end controller issues for one transaction
  /// before rotating to the next (anticipatory read-ahead granularity).
  int read_ahead_chunk = 30;
  /// Extension beyond the paper: open-system arrivals.  When > 0,
  /// transactions arrive with exponentially distributed interarrival times
  /// of this mean instead of the paper's closed batch, queueing for
  /// admission when `mpl` transactions are already active.  Completion is
  /// then measured from arrival (a response time).
  sim::TimeMs mean_interarrival_ms = 0.0;
  uint64_t seed = 1;
  /// Run the invariant auditor (write-ahead rule, page-table coherence,
  /// conservation laws) alongside the simulation.
  bool audit = kAuditByDefault;
  /// Abort the process on the first audit violation, printing the repro
  /// command and the trace tail.  When false, violations are collected in
  /// MachineResult::audit_violations (for tests).
  bool audit_abort = true;
  /// Command line printed as "repro: ..." when an audit violation aborts.
  std::string audit_repro_hint;
  /// Optional event-trace ring the run records into (not owned).  The
  /// machine, its devices, and the recovery architecture emit into it;
  /// null disables tracing entirely.
  sim::TraceRing* trace = nullptr;

  /// Pages of data area per disk (excluding the reserved cylinders).
  int64_t data_pages_per_disk() const {
    return static_cast<int64_t>(geometry.cylinders - reserved_cylinders) *
           geometry.pages_per_cylinder();
  }
};

/// Metrics of one simulated run.
struct MachineResult {
  std::string arch_name;
  double total_time_ms = 0;
  /// Denominator of the paper's throughput metric: pages read plus pages
  /// in write sets, a property of the workload (so architectures are
  /// directly comparable).
  uint64_t total_pages = 0;
  double exec_time_per_page_ms = 0;
  /// Transaction completion time: first cache-frame allocation to the last
  /// updated page reaching disk (commit protocol included).
  RunningStat completion_ms;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;  // physical updated-page writes
  std::vector<double> data_disk_util;
  std::vector<uint64_t> data_disk_accesses;
  double qp_util = 0;
  /// Average number of cache frames held by updated pages waiting for
  /// recovery data to reach stable storage (paper §4.1.2).
  double avg_blocked_pages = 0;
  uint64_t deadlock_restarts = 0;
  /// Architecture-specific extras: log-disk utilizations, page-table disk
  /// utilization, buffer hit rates, ...
  std::map<std::string, double> extra;
  /// Invariant violations collected when auditing runs with
  /// audit_abort == false ("check: detail" strings); empty on a clean run.
  std::vector<std::string> audit_violations;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_CONFIG_H_
