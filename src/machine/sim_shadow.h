// Shadow ("thru page-table") recovery architecture for the machine
// simulator (paper §3.2, §4.2).
//
// Every data-page access indirects through a page table kept on dedicated
// page-table disks driven by page-table processors.  An LRU buffer of
// page-table pages (the paper's sizes: 10/25/50) absorbs lookups; misses
// cost a page-table disk access.  Commit rereads evicted page-table pages
// covering the write set and writes them back (the shadow-table flip).
// The `clustered` flag models the paper's crucial assumption: when false,
// the copy-on-write relocation has scrambled logical adjacency and every
// access lands at an effectively random disk address (§4.2.3, Table 7).

#ifndef DBMR_MACHINE_SIM_SHADOW_H_
#define DBMR_MACHINE_SIM_SHADOW_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hw/disk.h"
#include "machine/machine.h"
#include "machine/recovery_arch.h"
#include "sim/server.h"

namespace dbmr::machine {

/// Options for the shadow architecture.
struct SimShadowOptions {
  int num_pt_processors = 1;
  int pt_buffer_pages = 10;
  /// 4K page-table pages hold >1000 entries (paper §4.2.1).
  int entries_per_pt_page = 1024;
  /// If true, logically adjacent pages are assumed to stay physically
  /// clustered; if false they are scrambled across the disk.
  bool clustered = true;
  /// Extension beyond the paper: partial clustering.  When `clustered` is
  /// true, each page remains at its home location with this probability
  /// and is relocated otherwise — modeling gradual decay of adjacency as
  /// copy-on-write churns the allocation map (cf. the functional
  /// ShadowEngine::ClusteringFactor()).  1.0 reproduces the paper's
  /// clustered column, 0.0 its scrambled column.
  double cluster_fraction = 1.0;
  /// Page-table processor time per miss-path request (entry extraction,
  /// map maintenance); buffer hits are served by the back-end controller
  /// and bypass the processors.
  sim::TimeMs pt_cpu_ms = 3.0;
  /// Page-table disk timing.  The controller overhead is calibrated a bit
  /// above the data drives' (the page-table path also covers entry
  /// extraction and map maintenance per access) so that one page-table
  /// processor reproduces the paper's Table 4 degradation profile.
  hw::DiskGeometry pt_geometry = PtDiskGeometry();

  static hw::DiskGeometry PtDiskGeometry() {
    hw::DiskGeometry g = hw::Ibm3350Geometry();
    g.access_overhead_ms = 22.0;
    return g;
  }
};

/// The shadow page-table architecture.
class SimShadow : public RecoveryArch {
 public:
  explicit SimShadow(SimShadowOptions options = {});
  ~SimShadow() override;

  std::string name() const override;
  std::string registry_name() const override { return "shadow"; }
  void Attach(Machine* machine) override;
  void BeforeRead(txn::TxnId t, uint64_t page,
                  std::function<void()> done) override;
  Placement ReadPlacement(uint64_t page) override;
  void WriteUpdatedPage(txn::TxnId t, uint64_t page,
                        std::function<void()> done) override;
  void OnCommit(txn::TxnId t, std::function<void()> done) override;
  void OnRestart(txn::TxnId t, std::function<void()> done) override {
    dirty_pt_pages_.erase(t);
    done();
  }
  void ContributeStats(MachineResult* result) override;

  double PtDiskUtilization(int i) const;
  double BufferHitRate() const;

 private:
  struct PtProcessor {
    std::unique_ptr<sim::Server> cpu;
    std::unique_ptr<hw::DiskModel> disk;
    uint64_t lookups = 0;
  };

  uint64_t PtPageOf(uint64_t page) const {
    return page / static_cast<uint64_t>(opts_.entries_per_pt_page);
  }
  size_t ProcessorOf(uint64_t pt_page) const {
    return static_cast<size_t>(pt_page) %
           static_cast<size_t>(opts_.num_pt_processors);
  }
  hw::DiskPageAddr PtAddr(uint64_t pt_page) const;
  bool PageIsClustered(uint64_t page) const;
  bool BufferContains(uint64_t pt_page) const;
  void BufferInsert(uint64_t pt_page);
  /// Fetches a page-table page (buffer -> disk); coalesces concurrent
  /// misses for the same page.
  void FetchPtPage(uint64_t pt_page, std::function<void()> done);
  Placement ScrambledPlacement(uint64_t page) const;

  SimShadowOptions opts_;
  std::vector<std::unique_ptr<PtProcessor>> pts_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> buffer_;
  std::unordered_map<uint64_t, std::vector<std::function<void()>>>
      inflight_fetches_;
  std::unordered_map<txn::TxnId, std::unordered_set<uint64_t>>
      dirty_pt_pages_;  // per txn: page-table pages its write set touches

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t commit_rereads_ = 0;
  uint64_t pt_writes_ = 0;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_SIM_SHADOW_H_
