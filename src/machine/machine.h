// The multiprocessor database machine simulator (paper §2 and §4).
//
// Event-driven model of the multiprocessor-cache architecture: the
// back-end controller admits transactions up to the multiprogramming
// level, allocates cache frames, issues anticipatory data-page reads
// (through the recovery architecture's read path), assigns ready pages to
// free query processors, collects recovery data for updated pages, writes
// them back under the architecture's write discipline, and runs the
// commit protocol.  Page-level two-phase locking with deadlock-victim
// restart is provided by txn::LockManager.
//
// Built to scale ~100× past the paper's 75-QP / 150-txn design point:
// transactions stream from a workload::TxnSource into a recycled pool of
// at most MPL TxnRun slots (a million-transaction run holds MPL specs in
// memory, not a million); active and read-eligible transactions live on
// intrusive lists threaded through the TxnRun nodes, so the frame-fill
// pump touches only transactions that can actually issue a read and
// completion unlinks in O(1); the ready-page and arrival queues are flat
// ring buffers pre-sized at Start().
//
// Metrics follow the paper: average execution time per page (machine time
// over total pages read+written by the workload) and average transaction
// completion time (first cache-frame allocation to the last updated page
// on disk), plus device utilizations and the blocked-page diagnostic.

#ifndef DBMR_MACHINE_MACHINE_H_
#define DBMR_MACHINE_MACHINE_H_

#include <memory>
#include <vector>

#include "hw/disk.h"
#include "machine/auditor.h"
#include "machine/config.h"
#include "machine/recovery_arch.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "txn/lock_manager.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace dbmr::machine {

/// One simulated database machine run.
class Machine {
 public:
  /// Streams transactions from `source` (admission order = source order).
  Machine(const MachineConfig& config,
          std::unique_ptr<workload::TxnSource> source,
          std::unique_ptr<RecoveryArch> arch);
  /// Convenience: wraps an already-materialized workload.
  Machine(const MachineConfig& config,
          std::vector<workload::TransactionSpec> workload,
          std::unique_ptr<RecoveryArch> arch);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  /// Executes the workload to completion and returns the metrics.
  /// Equivalent to Start(); simulator()->Run(); Finish().
  MachineResult Run();

  /// Pre-sizes pools/queues, schedules arrivals, and admits the initial
  /// transactions.  Call once; drive the simulator to completion (e.g.
  /// simulator()->Run()), then call Finish().
  void Start();

  /// Collects the metrics after the event list has drained.
  MachineResult Finish();

  /// --- Context API used by recovery architectures ---------------------
  sim::Simulator* simulator() { return &sim_; }
  const MachineConfig& config() const { return config_; }
  Rng* rng() { return &rng_; }
  int num_data_disks() const { return config_.num_data_disks; }
  hw::DiskModel* data_disk(int i) { return data_disks_[static_cast<size_t>(i)].get(); }

  /// Home placement of a logical page: cylinders are striped across the
  /// data disks so sequential scans engage every drive.
  Placement HomePlacement(uint64_t page) const;

  /// A slot in the reserved scratch area at the end of a drive.
  Placement ScratchPlacement(int disk, uint64_t index) const;

  /// Transient cache frames for recovery traffic (e.g. log fragments
  /// routed through the disk cache).  TryTakeFrame returns false when the
  /// cache is full; callers then skip the cache optimization.
  bool TryTakeFrame();
  void ReturnFrame();

  /// The architecture is issuing the home (or redirected) write of an
  /// updated page; audited against the write-ahead rule and counted for
  /// the pages_written statistic.
  void NoteHomeWrite(txn::TxnId t, uint64_t page);

  /// Physical updated-page writes performed by the architecture (for the
  /// pages_written statistic).
  void NotePhysicalWrite() { ++pages_written_; }

  /// The run's invariant auditor, or null when auditing is off.
  Auditor* auditor() { return auditor_.get(); }

  /// The run's event-trace ring, or null when tracing is off.
  sim::TraceRing* trace() { return sim_.trace(); }

  /// Emits a trace event on the machine's own track (no-op untraced).
  void TraceEmit(sim::TraceKind kind, uint64_t a = 0, uint64_t b = 0) {
    if (sim::TraceRing* tr = sim_.trace()) {
      tr->Emit(sim_.Now(), machine_track_, kind, a, b);
    }
  }

 private:
  struct TxnRun {
    workload::TransactionSpec spec;  // owned; buffers recycled across txns
    size_t next_read = 0;
    int outstanding = 0;  // pages issued and not yet retired
    bool committing = false;
    bool doomed = false;  // deadlock victim draining before restart
    bool paused = false;  // restart backoff in progress
    bool in_eligible = false;
    int waiting_locks = 0;
    sim::TimeMs admit_time = 0;
    int restarts = 0;
    // Intrusive links: all admitted txns in admission order...
    TxnRun* prev_active = nullptr;
    TxnRun* next_active = nullptr;
    // ...and the read-eligible subset, in the same admission order.
    TxnRun* prev_elig = nullptr;
    TxnRun* next_elig = nullptr;
  };
  struct PageWork {
    TxnRun* txn = nullptr;
    uint64_t page = 0;
    bool is_write = false;
  };

  bool open_system() const { return config_.mean_interarrival_ms > 0.0; }
  /// A transaction the pump may issue reads for right now.
  static bool Eligible(const TxnRun* t) {
    return !t->doomed && !t->paused && !t->committing &&
           t->next_read < t->spec.reads.size();
  }

  TxnRun* AcquireRun();
  void RecycleRun(TxnRun* txn);
  void ActiveAppend(TxnRun* txn);
  void ActiveUnlink(TxnRun* txn);
  void EligibleAppend(TxnRun* txn);
  void EligibleUnlink(TxnRun* txn);
  /// Re-links a txn that became eligible again (restart wake-up) at its
  /// admission-order position: before the first eligible successor on the
  /// active list.
  void EligibleRelink(TxnRun* txn);

  void ScheduleNextArrival(sim::TimeMs base);
  void AdmitNext();
  void Pump();
  void IssueRead(TxnRun* txn);
  void StartRead(TxnRun* txn, uint64_t page, bool is_write);
  void OnReadDone(PageWork work);
  void StartProcessing(PageWork work);
  void OnProcessed(PageWork work);
  void RetirePage(PageWork work);
  void MaybeComplete(TxnRun* txn);
  void CompleteTxn(TxnRun* txn);
  void RestartTxn(TxnRun* txn);

  MachineConfig config_;
  std::unique_ptr<workload::TxnSource> source_;
  std::unique_ptr<RecoveryArch> arch_;
  sim::Simulator sim_;
  Rng rng_;
  Rng arrival_rng_;  // open-system arrivals; separate stream so the
                     // closed-batch rng_ sequence is arrival-free
  txn::LockManager locks_;
  std::vector<std::unique_ptr<hw::DiskModel>> data_disks_;
  std::unique_ptr<Auditor> auditor_;
  uint16_t machine_track_ = 0;

  // TxnRun pool: at most ~MPL live at once; completed runs recycle.
  std::vector<std::unique_ptr<TxnRun>> run_pool_;
  std::vector<TxnRun*> free_runs_;
  uint64_t generated_txns_ = 0;   // specs pulled from the source
  uint64_t arrivals_scheduled_ = 0;
  RingBuffer<sim::TimeMs> arrival_backlog_;  // open system: arrived, not admitted

  TxnRun* active_head_ = nullptr;  // admission order
  TxnRun* active_tail_ = nullptr;
  int active_count_ = 0;
  TxnRun* elig_head_ = nullptr;  // read-eligible subset, admission order
  TxnRun* elig_tail_ = nullptr;

  RingBuffer<PageWork> ready_;  // pages in cache awaiting a QP
  int free_frames_ = 0;
  int busy_qps_ = 0;
  uint64_t completed_txns_ = 0;
  uint64_t total_spec_pages_ = 0;  // reads+writes across generated specs
  bool started_ = false;
  bool pumping_ = false;
  bool repump_ = false;
  sim::TimeMs completion_end_ = 0;

  TimeWeightedStat qp_busy_stat_;
  TimeWeightedStat blocked_pages_stat_;
  int blocked_pages_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t deadlock_restarts_ = 0;
  RunningStat completion_ms_;

  friend class RecoveryArch;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_MACHINE_H_
