// Runtime invariant auditor for the database-machine simulator.
//
// The machine and the recovery architectures report their state
// transitions here; the auditor cross-checks them against the protocol
// invariants the paper's results rest on:
//
//  (a) the write-ahead rule — an updated page may not be released for its
//      home write (nor the write issued) while any of its log fragments
//      is not yet stable on a log disk, under every log-selection policy,
//      logical and physical logging, and both fragment routings;
//  (b) shadow page-table coherence — each logical page has exactly one
//      live physical block; reads target it; a commit completes only
//      after every dirty page-table page of the transaction is flushed;
//      an aborted no-redo transaction restores every in-place overwrite
//      before its locks are released;
//  (c) conservation laws — cache frames stay within [0, capacity] and
//      balance at end of run, busy query processors stay within the pool,
//      device busy time never exceeds elapsed time, and lock grants
//      respect two-phase locking (exclusive held at write-back and
//      commit, no growth after commit begins).
//
// A violation either aborts immediately — printing the violated check,
// the replay seed / repro command line, and the tail of the event trace,
// in the same style as dbmr_torture — or (in tests) is collected into
// MachineResult::audit_violations.  Auditing is on by default in debug
// builds and off in release builds; MachineConfig::audit overrides.

#ifndef DBMR_MACHINE_AUDITOR_H_
#define DBMR_MACHINE_AUDITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "machine/config.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "txn/lock_manager.h"
#include "txn/types.h"

namespace dbmr::sim {
class TraceRing;
}

namespace dbmr::machine {

struct AuditorOptions {
  int cache_frames = 0;
  int num_query_processors = 0;
  /// Abort the process on the first violation (with repro command and
  /// trace tail); when false, violations collect in `violations()`.
  bool abort_on_violation = true;
  /// Command line printed as "repro: ..." when aborting.
  std::string repro_hint;
};

struct AuditViolation {
  std::string check;   // short invariant name, e.g. "wal-rule"
  std::string detail;
  sim::TimeMs when = 0;
};

/// Invariant monitor for one Machine run.  All hooks are cheap map/set
/// bookkeeping; the auditor never schedules events or perturbs timing.
class Auditor {
 public:
  Auditor(AuditorOptions opts, sim::Simulator* sim,
          const txn::LockManager* locks, sim::TraceRing* trace);

  // --- machine pipeline ------------------------------------------------
  void OnAdmit(txn::TxnId t);
  void OnLockAcquired(txn::TxnId t, uint64_t page);
  void OnReadPlacement(uint64_t page, const Placement& pl);
  void OnCollectStart(txn::TxnId t, uint64_t page);
  void OnRecoveryStable(txn::TxnId t, uint64_t page);
  void OnHomeWriteIssued(txn::TxnId t, uint64_t page);
  void OnCommitStart(txn::TxnId t,
                     const std::unordered_set<uint64_t>& write_set);
  void OnCommitDone(txn::TxnId t);
  /// The architecture finished undoing/discarding the victim's recovery
  /// state; per-transaction audit state resets here.
  void OnRestartComplete(txn::TxnId t);
  void CheckFrames(int free_frames);
  void CheckQps(int busy_qps);
  void OnRunEnd(int free_frames, int busy_qps, int blocked_pages);
  /// Final sweep over the computed metrics (utilizations <= 1, ...).
  void CheckResult(const MachineResult& r);

  // --- recovery-architecture hooks -------------------------------------
  /// WAL: a log fragment for (t, page) exists but is not yet on a log disk.
  void OnLogFragment(txn::TxnId t, uint64_t page);
  /// WAL: the log page carrying one fragment of (t, page) reached disk.
  void OnFragmentDurable(txn::TxnId t, uint64_t page);
  /// Shadow: the copy-on-write block for (t, page) was written at `pl`
  /// (not yet live — the page table still maps the old block).
  void OnShadowWrite(txn::TxnId t, uint64_t page, const Placement& pl);
  /// Shadow: t's write set touches page-table page `pt_page`.
  void OnPtDirty(txn::TxnId t, uint64_t pt_page);
  /// Shadow: the commit flip wrote `pt_page` back for t.
  void OnPtFlushed(txn::TxnId t, uint64_t pt_page);
  /// Overwriting (no-redo): an uncommitted home location was overwritten
  /// in place; the before image must be restored if t aborts.
  void OnInPlaceOverwrite(txn::TxnId t, uint64_t page);
  /// Overwriting (no-redo): the before image of (t, page) was restored.
  void OnOverwriteUndone(txn::TxnId t, uint64_t page);

  // --- ARIES engine hooks (store::AriesEngine audit taps) ---------------
  /// ARIES: restart began.  Volatile state — including any appended-but-
  /// never-durable log tail — is gone, so the pending-undo model resets;
  /// restart rebuilds it from the durable log via OnAriesUpdate.
  void OnAriesRestart();
  /// ARIES: an update record for t was appended at end-LSN `lsn`.
  void OnAriesUpdate(txn::TxnId t, uint64_t lsn);
  /// ARIES: a CLR for t was appended carrying `undo_next_lsn`.  Must
  /// compensate t's newest un-compensated update, and its undo-next must
  /// point at the one below it (0 when rollback is complete).
  void OnAriesClr(txn::TxnId t, uint64_t undo_next_lsn);
  /// ARIES: t ended (commit, or abort/restart-undo completion).  An
  /// uncommitted end with un-compensated updates is an incomplete CLR
  /// chain.
  void OnAriesTxnEnd(txn::TxnId t, bool committed);
  /// ARIES: page write-back observed with the page's pageLSN and the log's
  /// flushedLSN; pageLSN > flushedLSN breaks the WAL rule.
  void OnAriesWriteBack(uint64_t page, uint64_t page_lsn,
                        uint64_t flushed_lsn);

  uint64_t checks() const { return checks_; }
  const std::vector<AuditViolation>& violations() const {
    return violations_;
  }

  /// One named check of the auditor's catalog.  Universal checks apply to
  /// every architecture; the rest only fire for architectures that use the
  /// corresponding hooks and are declared per entry in core::ArchRegistry.
  struct CheckInfo {
    const char* name;
    const char* doc;
    bool universal;
  };

  /// The complete catalog of check names Violate() may report.  Also
  /// registered as the invariant catalog in core::ArchRegistry, which is
  /// what docs/ARCHITECTURES.md renders.
  static const std::vector<CheckInfo>& KnownChecks();

  /// Per-architecture checks the running architecture declares in its
  /// registry entry.  A violation of an undeclared non-universal check is
  /// annotated as registry drift in the violation detail.
  void SetDeclaredChecks(std::vector<std::string> declared);
  const std::vector<std::string>& declared_checks() const {
    return declared_checks_;
  }

 private:
  struct TxnState {
    /// Log fragments per updated page not yet stable on a log disk.
    /// Duplicate reads make one logical page two independent cache frames,
    /// so the WAL check pairs each home write with one durable fragment
    /// (frag_unconsumed) rather than requiring frag_pending to reach zero.
    std::unordered_map<uint64_t, int> frag_pending;
    /// Durable fragments per page not yet backing an issued home write.
    std::unordered_map<uint64_t, int> frag_unconsumed;
    /// True once any log fragment was issued (enables WAL checks; other
    /// architectures never set it).
    bool uses_wal = false;
    /// Dirty page-table pages awaiting the commit flip.
    std::unordered_set<uint64_t> dirty_pt;
    /// Copy-on-write blocks written, keyed by logical page (encoded
    /// placement); live only after commit.
    std::unordered_map<uint64_t, uint64_t> shadow_candidates;
    /// Home locations overwritten in place before commit (page -> count;
    /// a page can be updated more than once per attempt).
    std::unordered_map<uint64_t, int> inplace;
    bool committing = false;
  };

  static uint64_t PlacementKey(const Placement& pl);
  TxnState& StateOf(txn::TxnId t) { return txns_[t]; }
  void Violate(const char* check, std::string detail);

  AuditorOptions opts_;
  sim::Simulator* sim_;
  const txn::LockManager* locks_;
  sim::TraceRing* trace_;

  std::unordered_map<txn::TxnId, TxnState> txns_;
  /// ARIES: per transaction, the end-LSNs of updates not yet compensated
  /// by a CLR (a stack — CLRs must pop newest-first).
  std::unordered_map<txn::TxnId, std::vector<uint64_t>> aries_pending_undo_;
  /// Logical page -> live physical block (shadow architecture only;
  /// populated by committed copy-on-write flips).
  std::unordered_map<uint64_t, uint64_t> live_block_;
  /// Logical page -> transaction with an uncommitted shadow candidate.
  std::unordered_map<uint64_t, txn::TxnId> candidate_owner_;

  uint64_t checks_ = 0;
  std::vector<AuditViolation> violations_;
  std::vector<std::string> declared_checks_;
  bool declared_checks_set_ = false;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_AUDITOR_H_
