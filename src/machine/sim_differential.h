// Differential-file recovery architecture for the machine simulator
// (paper §3.3, §4.3).
//
// Each relation R = (B ∪ A) − D.  Reading a base page drags in extra A
// and D pages in proportion to the differential-file size, and the query
// processors pay set-union/set-difference cycles: under the *basic*
// strategy on every page, under the *optimal* strategy only on pages that
// produce at least one result tuple.  Updates append to the A file, so
// only `output_fraction` of an output page materializes per updated page
// (page fragmentation keeps the saving sub-linear).  The set-difference
// cost and the probability a page needs one grow with the differential
// size, which produces the paper's non-linear degradation (Table 11).

#ifndef DBMR_MACHINE_SIM_DIFFERENTIAL_H_
#define DBMR_MACHINE_SIM_DIFFERENTIAL_H_

#include <unordered_map>
#include <vector>

#include "machine/machine.h"
#include "machine/recovery_arch.h"

namespace dbmr::machine {

/// Options for the differential-file architecture.
struct SimDifferentialOptions {
  /// Size of each differential file (A, D) relative to the base file.
  double diff_size = 0.10;
  /// Fraction of an output page created per updated page (paper §4.3.2).
  double output_fraction = 0.10;
  /// Optimal query-processing strategy: set-difference only on pages with
  /// at least one qualifying tuple.
  bool optimal = true;
  /// Query-processor cost of a set-difference over one page against a 10%
  /// differential file (scales linearly with diff_size).
  sim::TimeMs setdiff_cpu_ms_at_10pct = 1080.0;
  /// Probability a page yields a result tuple at 10% differential size
  /// (grows with the square root of the relative size).
  double hit_fraction_at_10pct = 0.35;

  /// --- Extension beyond the paper (§4.3.3 declined to model merging) ---
  /// If > 0, fold A and D back into B after this many output pages have
  /// accumulated.  The merge streams the affected base region through the
  /// machine: it reads the A/D pages plus a proportional slice of B and
  /// rewrites that slice, loading the data disks for its duration.
  int merge_every_output_pages = 0;
  /// Base-file pages rewritten per differential page folded in.
  double merge_base_pages_per_diff_page = 10.0;

  /// Model output-page fragmentation per transaction (§4.3.2: each
  /// transaction's partially filled output pages are written at commit,
  /// which is why halving the output fraction does not halve the writes).
  /// When false, output accumulates globally — the idealized,
  /// fragmentation-free lower bound.
  bool per_txn_fragmentation = true;
};

/// The differential-file architecture.
class SimDifferential : public RecoveryArch {
 public:
  explicit SimDifferential(SimDifferentialOptions options = {});

  std::string name() const override;
  std::string registry_name() const override { return "differential"; }
  void BeforeRead(txn::TxnId t, uint64_t page,
                  std::function<void()> done) override;
  sim::TimeMs ExtraCpu(txn::TxnId t, uint64_t page, bool is_write) override;
  void WriteUpdatedPage(txn::TxnId t, uint64_t page,
                        std::function<void()> done) override;
  void OnCommit(txn::TxnId t, std::function<void()> done) override;
  void OnRestart(txn::TxnId t, std::function<void()> done) override {
    // Drop the whole per-transaction output state; leaving txn_last_page_
    // behind leaked an entry per restarted transaction and let the rerun
    // cluster its first output write near the aborted run's last page.
    txn_output_acc_.erase(t);
    txn_last_page_.erase(t);
    done();
  }
  void ContributeStats(MachineResult* result) override;

 private:
  sim::TimeMs SetDiffCpu() const;
  double HitFraction() const;

  void MaybeStartMerge();

  Status WriteOutputPage(txn::TxnId t, uint64_t near_page,
                         std::function<void()> done);

  SimDifferentialOptions opts_;
  std::vector<uint64_t> a_cursor_;  // per-disk A-file append slots
  double output_acc_ = 0.0;
  std::unordered_map<txn::TxnId, double> txn_output_acc_;
  std::unordered_map<txn::TxnId, uint64_t> txn_last_page_;
  uint64_t extra_reads_ = 0;
  uint64_t output_pages_ = 0;
  uint64_t outputs_since_merge_ = 0;
  uint64_t merges_ = 0;
  uint64_t merge_ios_ = 0;
  uint64_t setdiffs_ = 0;
  uint64_t pages_seen_ = 0;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_SIM_DIFFERENTIAL_H_
