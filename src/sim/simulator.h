// Discrete-event simulation kernel.
//
// A Simulator owns a future-event list (binary heap with lazy cancellation)
// and a simulated clock.  Model components schedule closures; the kernel
// executes them in (time, insertion-order) sequence.  Everything is
// single-threaded and deterministic.

#ifndef DBMR_SIM_SIMULATOR_H_
#define DBMR_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "util/status.h"

namespace dbmr::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kNoEvent = 0;

/// Kernel-level counters, captured per run for the metrics layer.  All
/// values are deterministic functions of the model, never of wall time.
struct SimCounters {
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;
  /// Deepest the future-event heap ever got (lazily-cancelled entries
  /// included, since they occupy real heap slots until skimmed).
  uint64_t max_heap_depth = 0;
};

/// The event-driven simulation engine.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeMs Now() const { return now_; }

  /// Schedules `fn` to run `delay` ms from now.  Negative delays clamp to 0
  /// (the event still runs after all earlier-scheduled events at Now()).
  EventId Schedule(TimeMs delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when`; times before Now() clamp to
  /// Now().
  EventId ScheduleAt(TimeMs when, std::function<void()> fn);

  /// Cancels a pending event.  Returns true if the event existed and had
  /// not yet fired; cancelling a fired or unknown event is a no-op.
  bool Cancel(EventId id);

  /// Executes the next pending event.  Returns false if none remain.
  bool Step();

  /// Runs until the event list drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void Run(TimeMs until = kTimeInfinity);

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return live_.size(); }

  /// Total events executed since construction.
  uint64_t events_executed() const { return counters_.events_executed; }

  /// Scheduled/executed/cancelled totals and heap-depth highwater.
  const SimCounters& counters() const { return counters_; }

 private:
  struct Event {
    TimeMs when;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled entries off the heap top; returns false if empty.
  bool SkimCancelled();

  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  SimCounters counters_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> live_;  // scheduled and not fired/cancelled
};

}  // namespace dbmr::sim

#endif  // DBMR_SIM_SIMULATOR_H_
