// Discrete-event simulation kernel.
//
// A Simulator owns a future-event list and a simulated clock.  Model
// components schedule closures; the kernel executes them in
// (time, insertion-order) sequence.  Everything is single-threaded and
// deterministic.
//
// Internals are built for an allocation-free hot path:
//
//  * Closures are InlineTask values (small-buffer optimized, move-only);
//    captures up to kInlineFnStorage bytes never touch the heap.
//  * Pending events live in a slot pool addressed by generation-tagged
//    EventId (slot index in the low 32 bits, generation in the high 32).
//    Cancel is an O(1) generation compare — no hash-set lookup — and a
//    fired or cancelled slot is recycled through an intrusive free list.
//  * The future-event list is hybrid.  Small lists (the paper-scale
//    regime) use a hand-rolled 4-ary binary heap over 24-byte POD
//    entries (when, seq, slot, gen); sift-up/down moves PODs only,
//    never a closure.  When the pending list first exceeds
//    spill_threshold() the kernel migrates — permanently, for the rest
//    of the run — to a ladder queue (Tang & Goh style: an unsorted
//    overflow list, a stack of bucketed rungs that subdivide time spans
//    as they are consumed, and a small sorted "bottom" the next events
//    pop from).  Schedule/fire is O(1) amortized in ladder mode, vs the
//    heap's O(log n).  Both structures dequeue in the same strict total
//    order (when, then schedule seq), so fire order — and therefore
//    every trace, audit, and report — is identical in either mode; the
//    threshold only decides constants, not behaviour.
//  * Cancellation is lazy in both modes: the slot (and its closure) is
//    reclaimed immediately, while the stale 24-byte entry is dropped
//    when it surfaces (heap top / bottom-of-ladder) or when a bucket is
//    rebucketed.  max_heap_depth accounts stale entries in both modes,
//    exactly like the historical scheme.
//
// After Reserve(n), scheduling events with inline-sized captures performs
// zero heap allocations while the kernel stays in heap mode (verified by
// tests/sim_alloc_test.cc; the default spill threshold is far above
// paper-scale pending depths).  Ladder mode allocates only for bucket
// growth, which amortizes across the run.

#ifndef DBMR_SIM_SIMULATOR_H_
#define DBMR_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/inline_task.h"
#include "sim/time.h"
#include "util/status.h"

namespace dbmr::sim {

class TraceRing;

/// Identifies a scheduled event; usable to cancel it before it fires.
/// Packs a pool-slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits); a live slot's generation is never 0,
/// so no valid id equals kNoEvent.
using EventId = uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kNoEvent = 0;

/// Kernel-level counters, captured per run for the metrics layer.  All
/// values are deterministic functions of the model, never of wall time.
struct SimCounters {
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;
  /// Deepest the future-event list ever got (lazily-cancelled entries
  /// included, since they occupy real entries until skimmed).  In heap
  /// mode this is the heap depth; in ladder mode the total entry count
  /// across overflow, rungs, and bottom.
  uint64_t max_heap_depth = 0;
  /// Most event-pool slots ever in use at once.  Unlike max_heap_depth
  /// this excludes lazily-cancelled entries — a cancelled event's slot is
  /// recycled immediately — so it is the true pending-event highwater.
  uint64_t slot_pool_highwater = 0;
  /// Times the kernel migrated heap → ladder (0 or 1 per run; a counter
  /// so it aggregates naturally across machines).
  uint64_t ladder_spills = 0;
};

/// The event-driven simulation engine.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeMs Now() const { return now_; }

  /// Schedules `fn` to run `delay` ms from now.  Negative delays clamp to 0
  /// (the event still runs after all earlier-scheduled events at Now()).
  EventId Schedule(TimeMs delay, InlineTask fn);

  /// Schedules `fn` at absolute time `when`; times before Now() clamp to
  /// Now().
  EventId ScheduleAt(TimeMs when, InlineTask fn);

  /// Cancels a pending event.  Returns true if the event existed and had
  /// not yet fired; cancelling a fired or unknown event is a no-op.
  bool Cancel(EventId id);

  /// Executes the next pending event.  Returns false if none remain.
  bool Step();

  /// Runs until the event list drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void Run(TimeMs until = kTimeInfinity);

  /// Pre-sizes the slot pool and event heap for `n` concurrent events, so
  /// subsequent scheduling within that bound never allocates (while the
  /// kernel stays in heap mode, i.e. n <= spill_threshold()).
  void Reserve(size_t n);

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return live_count_; }

  /// Total events executed since construction.
  uint64_t events_executed() const { return counters_.events_executed; }

  /// Scheduled/executed/cancelled totals and heap/pool highwaters.
  const SimCounters& counters() const { return counters_; }

  /// Pending-list size at which the kernel migrates from the binary heap
  /// to the ladder queue.  The migration is one-way: once spilled, the
  /// run stays in ladder mode.  Fire order is mode-independent; tune this
  /// only for benchmarking (0 forces ladder from the first event, SIZE_MAX
  /// pins the heap).  Takes effect on the next Schedule.
  size_t spill_threshold() const { return spill_threshold_; }
  void set_spill_threshold(size_t n) { spill_threshold_ = n; }

  /// True once the kernel has migrated to the ladder queue.
  bool ladder_active() const { return ladder_mode_; }

  /// Optional event-trace ring (non-owning).  Model components emit trace
  /// events through this when set; the kernel itself never does, so the
  /// schedule/fire hot path is identical with and without tracing.
  void set_trace(TraceRing* trace) { trace_ = trace; }
  TraceRing* trace() const { return trace_; }

  /// Default spill_threshold(): far above paper-scale pending depths (a
  /// few thousand at 75 QPs), far below the millions where the heap's
  /// O(log n) becomes the bottleneck.
  static constexpr size_t kDefaultSpillThreshold = 8192;

 private:
  /// One future-event-list entry; 24 bytes of POD, cheap to sift.  `gen`
  /// snapshots the slot generation at scheduling time: the entry is stale
  /// (cancelled or already fired) iff it no longer matches the slot.
  struct HeapEntry {
    TimeMs when;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    uint32_t slot;
    uint32_t gen;
  };

  /// One pool slot: the closure plus its current generation, threaded on
  /// an intrusive free list while unused.  64 bytes with the 48-byte
  /// inline task buffer — one cache line per pending event.
  struct Slot {
    InlineTask task;
    uint32_t gen = 1;
    uint32_t next_free = kNilSlot;
  };

  /// One ladder rung: `nbuckets` equal-width time buckets over
  /// [start, start + nbuckets * width), consumed in order via `cur`.
  /// Rungs form a stack; each deeper rung subdivides one bucket of its
  /// parent, so the un-consumed spans of bottom < rungs (deepest first) <
  /// overflow are disjoint and ordered.  The bucket count is sized to the
  /// load being spread (RungFanout), so a consumed bucket holds about
  /// kSortThreshold/2 entries and the fixed per-bucket costs amortize —
  /// a constant 256-way split left sub-rung buckets nearly empty and the
  /// bucket machinery dominated the per-event cost.
  struct Rung {
    TimeMs start = 0.0;
    TimeMs width = 0.0;
    TimeMs inv_width = 0.0;  // 1/width: bucket index by multiply, not divide
    size_t cur = 0;       // next bucket index to consume
    size_t nbuckets = 0;  // live buckets this use of the rung
    size_t count = 0;     // entries currently held (stale included)
    std::vector<std::vector<HeapEntry>> buckets;  // capacity kRungBuckets
  };

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr size_t kHeapArity = 4;
  /// Upper bound on buckets per rung.  High enough that a 10M-entry
  /// overflow spread reaches sort-sized buckets in one spawn level —
  /// every extra level moves every entry one more time — yet low enough
  /// that the bucket-tail cache lines inserts scatter across stay close
  /// to L1-sized (512 buckets ~= 32 KiB of active tails).
  static constexpr size_t kRungBuckets = 512;
  /// How many events ahead of the bottom surface to prefetch slots.  The
  /// sorted bottom run makes upcoming slots predictable, so the random
  /// DRAM access for each event's closure overlaps the callbacks running
  /// before it — a structural advantage the heap (whose pop order
  /// reshuffles) cannot get.
  static constexpr size_t kPrefetchDepth = 8;
  /// Buckets at or below this size are sorted straight into the bottom
  /// list instead of spawning a finer rung.  Bigger runs mean fewer
  /// redistribution levels (each level moves every entry once), longer
  /// sorted runs per refill, and a larger warming burst whose random
  /// slot loads overlap; sort cost grows only logarithmically.
  static constexpr size_t kSortThreshold = 128;
  static constexpr size_t kMaxRungs = 40;
  /// Spans narrower than this (ms) are never subdivided further.
  static constexpr TimeMs kMinBucketWidth = 1e-7;

  static bool EntryBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  /// Sort predicate for bottom_: descending fire order, next event at
  /// the back (pop_back = dequeue).
  static bool EntryAfter(const HeapEntry& a, const HeapEntry& b) {
    return EntryBefore(b, a);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);
  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  // --- ladder machinery (see simulator.cc for the full invariants) ---
  void SpillToLadder();
  void LadderInsert(HeapEntry entry);
  /// Ensures bottom_ holds the next pending entries; false if none remain.
  bool LadderAdvance();
  void SpreadOverflow();
  /// Moves bucket `j` of the current innermost rung into a new, finer
  /// rung pushed on the stack.
  void SpawnRung(size_t parent_index, size_t j);
  void PrefetchSlot(uint32_t slot) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[slot], /*rw=*/0, /*locality=*/1);
#else
    (void)slot;
#endif
  }

  /// Bucket count for spreading `n` entries: ~2n/kSortThreshold, in
  /// [2, kRungBuckets], so buckets finish near half the sort threshold.
  static size_t RungFanout(size_t n) {
    const size_t fan = 2 * n / kSortThreshold;
    if (fan < 2) return 2;
    if (fan > kRungBuckets) return kRungBuckets;
    return fan;
  }

  Rung& AcquireRung(size_t nbuckets);
  /// Drops stale entries from `v` in place; updates ladder_size_.
  /// Returns {min_when, max_when} over the survivors (undefined if empty).
  /// [min, max] fire time over `v` (stale entries included — see the
  /// definition for why probing staleness here would be a pessimization).
  /// Requires `v` non-empty.
  std::pair<TimeMs, TimeMs> SpanOf(const std::vector<HeapEntry>& v);

  /// Points at the next live entry (skimming stale ones), or nullptr if
  /// the future-event list is empty.  Works in either mode.
  const HeapEntry* PeekLive();
  /// Removes the entry PeekLive() returned.
  void PopNext();

  TimeMs now_ = 0.0;
  TraceRing* trace_ = nullptr;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  SimCounters counters_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;

  // Ladder state (engaged once ladder_mode_ flips; empty before then).
  size_t spill_threshold_ = kDefaultSpillThreshold;
  bool ladder_mode_ = false;
  size_t ladder_size_ = 0;      // entries across overflow+rungs+bottom
  TimeMs overflow_start_ = 0.0; // inserts at/after this time go to overflow_
  std::vector<HeapEntry> overflow_;
  std::vector<Rung> rungs_;     // storage; first rung_depth_ are live
  size_t rung_depth_ = 0;
  std::vector<HeapEntry> bottom_;  // sorted by EntryAfter; back() is next
  /// Accumulator for the bottom-refill cache-warming loads; never read.
  /// Being a member keeps the compiler from eliding the loads.
  uint64_t warm_sink_ = 0;
};

}  // namespace dbmr::sim

#endif  // DBMR_SIM_SIMULATOR_H_
