// Discrete-event simulation kernel.
//
// A Simulator owns a future-event list and a simulated clock.  Model
// components schedule closures; the kernel executes them in
// (time, insertion-order) sequence.  Everything is single-threaded and
// deterministic.
//
// Internals are built for an allocation-free hot path:
//
//  * Closures are InlineTask values (small-buffer optimized, move-only);
//    captures up to kInlineFnStorage bytes never touch the heap.
//  * Pending events live in a slot pool addressed by generation-tagged
//    EventId (slot index in the low 32 bits, generation in the high 32).
//    Cancel is an O(1) generation compare — no hash-set lookup — and a
//    fired or cancelled slot is recycled through an intrusive free list.
//  * The future-event list is a hand-rolled binary heap over 24-byte POD
//    entries (when, seq, slot, gen); sift-up/down moves PODs only, never
//    a closure.  Cancelled events stay in the heap and are skimmed when
//    they surface, exactly like the historical lazy-cancellation scheme,
//    so heap-depth accounting is unchanged.
//
// After Reserve(n), scheduling events with inline-sized captures performs
// zero heap allocations (verified by tests/sim_alloc_test.cc).

#ifndef DBMR_SIM_SIMULATOR_H_
#define DBMR_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/inline_task.h"
#include "sim/time.h"
#include "util/status.h"

namespace dbmr::sim {

class TraceRing;

/// Identifies a scheduled event; usable to cancel it before it fires.
/// Packs a pool-slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits); a live slot's generation is never 0,
/// so no valid id equals kNoEvent.
using EventId = uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kNoEvent = 0;

/// Kernel-level counters, captured per run for the metrics layer.  All
/// values are deterministic functions of the model, never of wall time.
struct SimCounters {
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;
  /// Deepest the future-event heap ever got (lazily-cancelled entries
  /// included, since they occupy real heap slots until skimmed).
  uint64_t max_heap_depth = 0;
  /// Most event-pool slots ever in use at once.  Unlike max_heap_depth
  /// this excludes lazily-cancelled entries — a cancelled event's slot is
  /// recycled immediately — so it is the true pending-event highwater.
  uint64_t slot_pool_highwater = 0;
};

/// The event-driven simulation engine.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeMs Now() const { return now_; }

  /// Schedules `fn` to run `delay` ms from now.  Negative delays clamp to 0
  /// (the event still runs after all earlier-scheduled events at Now()).
  EventId Schedule(TimeMs delay, InlineTask fn);

  /// Schedules `fn` at absolute time `when`; times before Now() clamp to
  /// Now().
  EventId ScheduleAt(TimeMs when, InlineTask fn);

  /// Cancels a pending event.  Returns true if the event existed and had
  /// not yet fired; cancelling a fired or unknown event is a no-op.
  bool Cancel(EventId id);

  /// Executes the next pending event.  Returns false if none remain.
  bool Step();

  /// Runs until the event list drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void Run(TimeMs until = kTimeInfinity);

  /// Pre-sizes the slot pool and event heap for `n` concurrent events, so
  /// subsequent scheduling within that bound never allocates.
  void Reserve(size_t n);

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return live_count_; }

  /// Total events executed since construction.
  uint64_t events_executed() const { return counters_.events_executed; }

  /// Scheduled/executed/cancelled totals and heap/pool highwaters.
  const SimCounters& counters() const { return counters_; }

  /// Optional event-trace ring (non-owning).  Model components emit trace
  /// events through this when set; the kernel itself never does, so the
  /// schedule/fire hot path is identical with and without tracing.
  void set_trace(TraceRing* trace) { trace_ = trace; }
  TraceRing* trace() const { return trace_; }

 private:
  /// One future-event-list entry; 24 bytes of POD, cheap to sift.  `gen`
  /// snapshots the slot generation at scheduling time: the entry is stale
  /// (cancelled or already fired) iff it no longer matches the slot.
  struct HeapEntry {
    TimeMs when;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    uint32_t slot;
    uint32_t gen;
  };

  /// One pool slot: the closure plus its current generation, threaded on
  /// an intrusive free list while unused.  64 bytes with the 48-byte
  /// inline task buffer — one cache line per pending event.
  struct Slot {
    InlineTask task;
    uint32_t gen = 1;
    uint32_t next_free = kNilSlot;
  };

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr size_t kHeapArity = 4;

  static bool EntryBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);
  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  /// Pops stale (cancelled) entries off the heap top; returns false if no
  /// live event remains.
  bool SkimCancelled();

  TimeMs now_ = 0.0;
  TraceRing* trace_ = nullptr;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  SimCounters counters_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;
};

}  // namespace dbmr::sim

#endif  // DBMR_SIM_SIMULATOR_H_
