#include "sim/server.h"

#include <algorithm>

#include "sim/trace.h"

namespace dbmr::sim {

Server::Server(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  DBMR_CHECK(sim != nullptr);
  busy_stat_.Set(sim_->Now(), 0.0);
  queue_stat_.Set(sim_->Now(), 0.0);
  if (TraceRing* tr = sim_->trace()) track_ = tr->RegisterTrack(name_);
}

void Server::Submit(Job job) {
  DBMR_CHECK(static_cast<bool>(job.service));
  queue_.push_back(Pending{std::move(job), sim_->Now()});
  queue_stat_.Set(sim_->Now(), static_cast<double>(queue_.size()));
  max_queue_ = std::max(max_queue_, queue_.size());
  if (!busy_) StartNext();
}

void Server::Submit(TimeMs service_time, InlineTask done) {
  Submit(Job{[service_time] { return service_time; }, std::move(done)});
}

void Server::StartNext() {
  DBMR_CHECK(!busy_ && !queue_.empty());
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  queue_stat_.Set(sim_->Now(), static_cast<double>(queue_.size()));
  busy_ = true;
  busy_stat_.Set(sim_->Now(), 1.0);
  wait_stat_.Add(sim_->Now() - p.enqueued);
  TimeMs service = p.job.service();
  DBMR_CHECK(service >= 0.0);
  service_stat_.Add(service);
  // The done callback parks in the server (a server serves exactly one job
  // at a time), so the completion closure captures only `this`.
  in_service_done_ = std::move(p.job.done);
  if (TraceRing* tr = sim_->trace()) {
    tr->Emit(sim_->Now(), track_, TraceKind::kServerStart, queue_.size());
  }
  sim_->Schedule(service, [this] { OnComplete(); });
}

void Server::OnComplete() {
  if (TraceRing* tr = sim_->trace()) {
    tr->Emit(sim_->Now(), track_, TraceKind::kServerEnd, completed_ + 1);
  }
  InlineTask done = std::move(in_service_done_);
  busy_ = false;
  busy_stat_.Set(sim_->Now(), 0.0);
  ++completed_;
  if (!queue_.empty()) StartNext();
  if (done) done();
}

}  // namespace dbmr::sim
