// InlineFn — a move-only callable with small-buffer optimization.
//
// The event kernel executes tens of millions of closures per simulated
// run; std::function pays a heap allocation for any capture bigger than
// two words and drags copy machinery the kernel never uses.  InlineFn
// stores captures up to kInlineFnStorage bytes directly inside the
// object, is move-only (so captures can own resources), and falls back
// to a single heap cell only for oversized captures.  Dispatch is a
// per-type static ops table — three function pointers — rather than a
// virtual base, so an empty InlineFn is one null pointer test.
//
// InlineTask (= InlineFn<void()>) is the kernel's event payload; servers
// and disks reuse the template for their service/done callbacks.

#ifndef DBMR_SIM_INLINE_TASK_H_
#define DBMR_SIM_INLINE_TASK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dbmr::sim {

/// Capture bytes stored inline.  48 covers every hot-path closure in the
/// tree (the largest, a disk-batch completion, is 32; a server done
/// forwarding a std::function is 40) while keeping the event-pool slot —
/// InlineFn + generation + free-link — at exactly one cache line.
inline constexpr size_t kInlineFnStorage = 48;

template <class Sig>
class InlineFn;  // only the R() specialization exists

template <class R>
class InlineFn<R()> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: mirrors std::function

  /// Wraps any callable `f` with signature R().  Captures of at most
  /// kInlineFnStorage bytes (and standard alignment) live inline; larger
  /// ones cost one heap allocation.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<R, D&>>>
  InlineFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = InlineOps<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = HeapOps<D>();
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(std::move(other)); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { Reset(); }

  InlineFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  /// True if a callable is held.
  explicit operator bool() const { return ops_ != nullptr; }

  R operator()() { return ops_->invoke(storage_); }

  /// True if the capture lives in the inline buffer (diagnostics/tests).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

  /// Compile-time: would callable D be stored inline?
  template <class D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineFnStorage &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    R (*invoke)(void* storage);
    void (*relocate)(void* from, void* to);  // move-construct, destroy source
    void (*destroy)(void* storage);
    bool inline_stored;
    /// Relocation is a plain byte copy: MoveFrom skips the indirect
    /// `relocate` call.  The kernel moves every event closure twice (into
    /// its pool slot, back out to fire), so this pays on the hottest path.
    bool trivial_relocate;
  };

  template <class D>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* s) -> R { return (*static_cast<D*>(s))(); },
        [](void* from, void* to) {
          D* src = static_cast<D*>(from);
          ::new (to) D(std::move(*src));
          src->~D();
        },
        [](void* s) { static_cast<D*>(s)->~D(); },
        /*inline_stored=*/true,
        /*trivial_relocate=*/std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>,
    };
    return &ops;
  }

  template <class D>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* s) -> R { return (**static_cast<D**>(s))(); },
        [](void* from, void* to) { ::new (to) D*(*static_cast<D**>(from)); },
        [](void* s) { delete *static_cast<D**>(s); },
        /*inline_stored=*/false,
        /*trivial_relocate=*/true,  // relocating the owning pointer is a copy
    };
    return &ops;
  }

  void MoveFrom(InlineFn&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial_relocate) {
        std::memcpy(storage_, other.storage_, kInlineFnStorage);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineFnStorage];
};

/// The kernel's event payload.
using InlineTask = InlineFn<void()>;

}  // namespace dbmr::sim

#endif  // DBMR_SIM_INLINE_TASK_H_
