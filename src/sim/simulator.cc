#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dbmr::sim {

namespace {

constexpr uint32_t SlotOf(EventId id) {
  return static_cast<uint32_t>(id & 0xffffffffu);
}
constexpr uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
constexpr EventId MakeId(uint32_t slot, uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

EventId Simulator::Schedule(TimeMs delay, InlineTask fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(TimeMs when, InlineTask fn) {
  DBMR_CHECK(static_cast<bool>(fn));
  if (when < now_) when = now_;
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.task = std::move(fn);
  HeapPush(HeapEntry{when, next_seq_++, slot, s.gen});
  ++live_count_;
  ++counters_.events_scheduled;
  counters_.max_heap_depth =
      std::max<uint64_t>(counters_.max_heap_depth, heap_.size());
  counters_.slot_pool_highwater =
      std::max<uint64_t>(counters_.slot_pool_highwater, live_count_);
  return MakeId(slot, s.gen);
}

bool Simulator::Cancel(EventId id) {
  // O(1): the id is stale iff its generation no longer matches the slot's.
  // The heap entry stays behind (lazy cancellation, as the heap always
  // worked) and is skimmed when it surfaces; the slot and its closure are
  // reclaimed immediately.
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size() || slots_[slot].gen != GenOf(id)) return false;
  ReleaseSlot(slot);
  --live_count_;
  ++counters_.events_cancelled;
  return true;
}

uint32_t Simulator::AcquireSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    return slot;
  }
  DBMR_CHECK(slots_.size() < kNilSlot);
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& s = slots_[index];
  s.task = nullptr;  // destroy the closure (and what it owns) now
  // Bump the generation so every outstanding id and heap entry for this
  // slot goes stale.  Generations never take the value 0: a valid EventId
  // is therefore never kNoEvent, even for slot 0.
  if (++s.gen == 0) s.gen = 1;
  s.next_free = free_head_;
  free_head_ = index;
}

void Simulator::HeapPush(HeapEntry entry) {
  // Array d-ary heap over POD entries; (when, seq) is a strict total
  // order (seq is unique), so execution order is independent of the
  // heap's internal layout.  Arity 4 halves the depth of the pop-side
  // sift-down — the expensive direction on a drained heap — and keeps a
  // node's children inside 1.5 cache lines (4 × 24 bytes).
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / kHeapArity;
    if (!EntryBefore(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) return;
  size_t i = 0;
  while (true) {
    const size_t first_child = kHeapArity * i + 1;
    if (first_child >= n) break;
    const size_t end = std::min(first_child + kHeapArity, n);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end; ++c) {
      if (EntryBefore(heap_[c], heap_[best])) best = c;
    }
    if (!EntryBefore(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

bool Simulator::SkimCancelled() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slots_[top.slot].gen == top.gen) return true;
    HeapPopTop();
  }
  return false;
}

bool Simulator::Step() {
  if (!SkimCancelled()) return false;
  const HeapEntry top = heap_.front();
  HeapPopTop();
  // Move the closure out and retire the slot before invoking: the task may
  // itself schedule (growing slots_/heap_) or try to cancel its own id.
  InlineTask task = std::move(slots_[top.slot].task);
  ReleaseSlot(top.slot);
  --live_count_;
  now_ = top.when;
  ++counters_.events_executed;
  task();
  return true;
}

void Simulator::Run(TimeMs until) {
  while (SkimCancelled()) {
    if (heap_.front().when > until) return;
    Step();
  }
}

void Simulator::Reserve(size_t n) {
  heap_.reserve(n);
  slots_.reserve(n);
}

}  // namespace dbmr::sim
