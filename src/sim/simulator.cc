#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dbmr::sim {

namespace {

/// Asks the OS to back a large kernel array with transparent huge pages.
/// At millions of pending events the slot pool dwarfs what 4 KiB TLB
/// entries cover, and the fire path's random slot access becomes a page
/// walk on every event — latency that software prefetch cannot reliably
/// hide, because prefetches may be dropped on a TLB miss.  2 MiB pages
/// put a multi-hundred-megabyte pool under a few hundred TLB entries.
/// Purely a hint: a no-op off Linux, when THP is disabled, or for
/// paper-scale pools that fit comfortably in 4 KiB pages anyway.
void HintHugePages(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kHuge = uintptr_t{2} << 20;
  if (bytes < 2 * kHuge) return;
  const uintptr_t lo =
      (reinterpret_cast<uintptr_t>(p) + kHuge - 1) & ~(kHuge - 1);
  const uintptr_t hi = (reinterpret_cast<uintptr_t>(p) + bytes) & ~(kHuge - 1);
  if (hi > lo) madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace

// Ladder-queue invariants (all times are event `when` values):
//
//  * overflow_ holds entries with when >= overflow_start_, unsorted.
//  * The live rungs rungs_[0..rung_depth_) hold entries strictly below
//    overflow_start_.  Rung r covers the un-consumed span
//    [r.start + r.cur * r.width, ...); each deeper rung subdivides one
//    already-detached bucket of its parent, so the un-consumed spans of
//    bottom_ < rungs (deepest first) < overflow_ are disjoint and
//    ordered: every entry in a deeper structure fires before every entry
//    in a shallower one.
//  * bottom_ is sorted in descending fire order; back() is the next
//    event overall.
//  * overflow_start_ only moves up when overflow_ is spread into a rung
//    (everything below the new value has left overflow_), and only moves
//    down when bottom_ and all rungs are empty (so nothing pending sits
//    below it).  Inserts therefore never land "behind" the consumption
//    frontier, and ties on `when` still fire in seq order: an entry can
//    only be routed to a shallower structure than an equal-time
//    predecessor if that predecessor has already been consumed or moved
//    deeper.
//
// Dequeue refills bottom_ by walking the innermost rung to its next
// non-empty bucket; big buckets spawn a finer rung (each entry moves
// O(#rungs) = O(log span) times, amortized O(1) for the workloads the
// machine generates), small ones are sorted into bottom_.  When all
// rungs drain, overflow_ is spread into a fresh rung 0.

namespace {

constexpr uint32_t SlotOf(EventId id) {
  return static_cast<uint32_t>(id & 0xffffffffu);
}
constexpr uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
constexpr EventId MakeId(uint32_t slot, uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

EventId Simulator::Schedule(TimeMs delay, InlineTask fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(TimeMs when, InlineTask fn) {
  DBMR_CHECK(static_cast<bool>(fn));
  if (when < now_) when = now_;
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.task = std::move(fn);
  const HeapEntry entry{when, next_seq_++, slot, s.gen};
  if (!ladder_mode_ && heap_.size() >= spill_threshold_) SpillToLadder();
  if (ladder_mode_) {
    LadderInsert(entry);
  } else {
    HeapPush(entry);
  }
  ++live_count_;
  ++counters_.events_scheduled;
  counters_.max_heap_depth = std::max<uint64_t>(
      counters_.max_heap_depth, ladder_mode_ ? ladder_size_ : heap_.size());
  counters_.slot_pool_highwater =
      std::max<uint64_t>(counters_.slot_pool_highwater, live_count_);
  return MakeId(slot, s.gen);
}

bool Simulator::Cancel(EventId id) {
  // O(1): the id is stale iff its generation no longer matches the slot's.
  // The 24-byte entry stays behind in whichever structure holds it (lazy
  // cancellation, as the event list always worked) and is dropped when it
  // surfaces or is rebucketed; the slot and its closure are reclaimed
  // immediately.
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size() || slots_[slot].gen != GenOf(id)) return false;
  ReleaseSlot(slot);
  --live_count_;
  ++counters_.events_cancelled;
  return true;
}

uint32_t Simulator::AcquireSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    return slot;
  }
  DBMR_CHECK(slots_.size() < kNilSlot);
  if (slots_.size() == slots_.capacity()) {
    // Grow by hand so the fresh (still-untouched) buffer can be
    // huge-page-hinted before its first fault; push_back's internal
    // reallocation would touch pages copying before we could hint.
    slots_.reserve(slots_.empty() ? 64 : slots_.size() * 2);
    HintHugePages(slots_.data(), slots_.capacity() * sizeof(Slot));
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& s = slots_[index];
  s.task = nullptr;  // destroy the closure (and what it owns) now
  // Bump the generation so every outstanding id and heap entry for this
  // slot goes stale.  Generations never take the value 0: a valid EventId
  // is therefore never kNoEvent, even for slot 0.
  if (++s.gen == 0) s.gen = 1;
  s.next_free = free_head_;
  free_head_ = index;
}

void Simulator::HeapPush(HeapEntry entry) {
  // Array d-ary heap over POD entries; (when, seq) is a strict total
  // order (seq is unique), so execution order is independent of the
  // heap's internal layout.  Arity 4 halves the depth of the pop-side
  // sift-down — the expensive direction on a drained heap — and keeps a
  // node's children inside 1.5 cache lines (4 × 24 bytes).
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / kHeapArity;
    if (!EntryBefore(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) return;
  size_t i = 0;
  while (true) {
    const size_t first_child = kHeapArity * i + 1;
    if (first_child >= n) break;
    const size_t end = std::min(first_child + kHeapArity, n);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end; ++c) {
      if (EntryBefore(heap_[c], heap_[best])) best = c;
    }
    if (!EntryBefore(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Simulator::SpillToLadder() {
  ladder_mode_ = true;
  ++counters_.ladder_spills;
  overflow_ = std::move(heap_);
  heap_.clear();
  ladder_size_ = overflow_.size();
  // All pending entries have when >= now_ (now_ tracks the minimum), so
  // routing every insert at/after now_ to overflow until the first spread
  // preserves the invariants.
  overflow_start_ = now_;
}

void Simulator::LadderInsert(HeapEntry e) {
  ++ladder_size_;
  if (rung_depth_ == 0 && bottom_.empty()) {
    // Everything pending lives in overflow; lower its floor if needed so
    // the entry is admissible there.
    if (e.when < overflow_start_) overflow_start_ = e.when;
    overflow_.push_back(e);
    return;
  }
  if (e.when >= overflow_start_) {
    overflow_.push_back(e);
    return;
  }
  // Outermost rung covers the latest un-consumed span; walk inward until
  // one owns this time.  A fully-consumed rung (cur == nbuckets,
  // sitting on the stack until the next dequeue pops it) has no span
  // left, so entries at/after its end clamp into the last bucket of the
  // outermost live rung — the final thing consumed before overflow is
  // spread — where the consumption-time sort orders them correctly.
  for (size_t r = 0; r < rung_depth_; ++r) {
    Rung& rung = rungs_[r];
    if (rung.cur >= rung.nbuckets) continue;
    const TimeMs boundary = rung.start + rung.cur * rung.width;
    if (e.when >= boundary) {
      size_t idx = static_cast<size_t>((e.when - rung.start) * rung.inv_width);
      if (idx >= rung.nbuckets) idx = rung.nbuckets - 1;
      if (idx < rung.cur) idx = rung.cur;  // float-fuzz guard
      rung.buckets[idx].push_back(e);
      ++rung.count;
      return;
    }
  }
  // Below every rung's frontier: belongs to the sorted bottom.
  bottom_.insert(
      std::upper_bound(bottom_.begin(), bottom_.end(), e, EntryAfter), e);
}

std::pair<TimeMs, TimeMs> Simulator::SpanOf(const std::vector<HeapEntry>& v) {
  // Deliberately counts stale (cancelled/superseded) entries too.  Testing
  // staleness means probing the entry's slot generation — a random DRAM
  // access into a slot table that can be hundreds of megabytes at ladder
  // scale, paid during redistribution for events that fire much later.
  // Carrying dead 24-byte entries through the (sequential, streaming)
  // redistributions instead is far cheaper; they are skimmed at the
  // bottom surface, where the slot line is about to be touched anyway.
  TimeMs lo = v.front().when, hi = lo;
  for (const HeapEntry& e : v) {
    lo = std::min(lo, e.when);
    hi = std::max(hi, e.when);
  }
  return {lo, hi};
}

Simulator::Rung& Simulator::AcquireRung(size_t nbuckets) {
  if (rung_depth_ == rungs_.size()) {
    rungs_.emplace_back();
    rungs_.back().buckets.resize(kRungBuckets);
  }
  // Reused buckets are empty: every bucket a prior use filled was drained
  // (swapped into bottom, redistributed, or filtered) before the rung
  // retired, and clearing keeps the capacity.
  Rung& r = rungs_[rung_depth_];
  r.cur = 0;
  r.nbuckets = nbuckets;
  r.count = 0;
  return r;
}

void Simulator::SpreadOverflow() {
  if (overflow_.empty()) return;
  const auto [lo, hi] = SpanOf(overflow_);
  const TimeMs span = hi - lo;
  if (overflow_.size() <= kSortThreshold || span <= kMinBucketWidth) {
    // Few events or a degenerate span: sort straight into bottom.  Any
    // value strictly above `hi` works as the new overflow floor.
    DBMR_CHECK(bottom_.empty());
    bottom_.swap(overflow_);
    std::sort(bottom_.begin(), bottom_.end(), EntryAfter);
    overflow_start_ = hi + std::max(kMinBucketWidth, span);
    return;
  }
  Rung& r = AcquireRung(RungFanout(overflow_.size()));
  r.start = lo;
  r.width = span / static_cast<TimeMs>(r.nbuckets);
  r.inv_width = 1.0 / r.width;
  // Bucketing multiplies by 1/width instead of dividing: an FP divide per
  // entry is real money when a spread moves ten million of them.  Any
  // monotone-in-`when` assignment is correct (consumption-time sorting
  // restores order within a bucket), so the last-ulp difference from the
  // true quotient is harmless.
  for (const HeapEntry& e : overflow_) {
    size_t idx = static_cast<size_t>((e.when - r.start) * r.inv_width);
    if (idx >= r.nbuckets) idx = r.nbuckets - 1;
    r.buckets[idx].push_back(e);
  }
  r.count = overflow_.size();
  overflow_.clear();
  ++rung_depth_;
  overflow_start_ = hi + kMinBucketWidth;
}

void Simulator::SpawnRung(size_t parent_index, size_t j) {
  // May grow rungs_: take the parent reference after.
  Rung& child = AcquireRung(RungFanout(rungs_[parent_index].buckets[j].size()));
  Rung& parent = rungs_[parent_index];
  child.start = parent.start + static_cast<TimeMs>(j) * parent.width;
  child.width = parent.width / static_cast<TimeMs>(child.nbuckets);
  child.inv_width = 1.0 / child.width;
  std::vector<HeapEntry>& bucket = parent.buckets[j];
  for (const HeapEntry& e : bucket) {
    TimeMs off = e.when - child.start;
    if (off < 0.0) off = 0.0;  // float-fuzz guard
    size_t idx = static_cast<size_t>(off * child.inv_width);
    if (idx >= child.nbuckets) idx = child.nbuckets - 1;
    child.buckets[idx].push_back(e);
  }
  child.count = bucket.size();
  parent.count -= bucket.size();
  bucket.clear();
  parent.cur = j + 1;
  ++rung_depth_;
}

bool Simulator::LadderAdvance() {
  for (;;) {
    if (!bottom_.empty()) return true;
    if (rung_depth_ == 0) {
      if (overflow_.empty()) return false;
      SpreadOverflow();
      continue;
    }
    const size_t ri = rung_depth_ - 1;
    Rung& rung = rungs_[ri];
    while (rung.cur < rung.nbuckets && rung.buckets[rung.cur].empty()) {
      ++rung.cur;
    }
    if (rung.cur >= rung.nbuckets) {
      DBMR_CHECK(rung.count == 0);
      --rung_depth_;  // retire the rung; its bucket storage is reused
      continue;
    }
    std::vector<HeapEntry>& bucket = rung.buckets[rung.cur];
    // Subdivide only when it will actually spread the entries: a big
    // bucket whose span is narrower than one child bucket would land in
    // a single child, so sort it instead (equal keys cost seq-compares
    // only, same asymptotics as the heap it replaced).  Sort-sized
    // buckets — the common case — skip the span scan entirely.
    if (bucket.size() > kSortThreshold && rung_depth_ < kMaxRungs &&
        rung.width > kMinBucketWidth) {
      const auto [lo, hi] = SpanOf(bucket);
      if ((hi - lo) >=
          rung.width / static_cast<TimeMs>(RungFanout(bucket.size()))) {
        SpawnRung(ri, rung.cur);
        continue;
      }
    }
    DBMR_CHECK(bottom_.empty());
    bottom_.swap(bucket);  // donates bottom_'s old capacity to the bucket
    rung.count -= bottom_.size();
    ++rung.cur;
    std::sort(bottom_.begin(), bottom_.end(), EntryAfter);
    // Warm the whole run's slot lines now with real loads (summed into a
    // member so they cannot be optimized away).  Unlike prefetch hints —
    // which this core may drop on a DTLB miss, exactly the case a huge
    // slot pool hits — demand loads always complete, and a run's worth of
    // independent loads overlap in the out-of-order window, so the random
    // DRAM misses are paid as one overlapped burst per refill instead of
    // serially at the surface.  Runs are ~kSortThreshold long, so this is
    // a bounded burst; the per-pop prefetch in PeekLive covers the
    // oversized degenerate-span case.
    const size_t n = bottom_.size();
    uint32_t sink = 0;
    for (size_t i = n - std::min<size_t>(n, 2 * kSortThreshold); i < n; ++i) {
      sink += slots_[bottom_[i].slot].gen;
    }
    warm_sink_ += sink;
    return true;
  }
}

const Simulator::HeapEntry* Simulator::PeekLive() {
  if (!ladder_mode_) {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      if (slots_[top.slot].gen == top.gen) return &top;
      HeapPopTop();
    }
    return nullptr;
  }
  for (;;) {
    if (!LadderAdvance()) return nullptr;
    // Normal-sized runs were slot-warmed wholesale at refill; only an
    // oversized (degenerate-span) bottom still needs a rolling prefetch
    // window ahead of the surface.
    if (bottom_.size() > 2 * kSortThreshold) {
      PrefetchSlot(bottom_[bottom_.size() - 1 - kPrefetchDepth].slot);
    }
    const HeapEntry& e = bottom_.back();
    if (slots_[e.slot].gen == e.gen) return &e;
    bottom_.pop_back();
    --ladder_size_;
  }
}

void Simulator::PopNext() {
  if (!ladder_mode_) {
    HeapPopTop();
  } else {
    bottom_.pop_back();
    --ladder_size_;
  }
}

bool Simulator::Step() {
  const HeapEntry* next = PeekLive();
  if (next == nullptr) return false;
  const HeapEntry top = *next;
  PopNext();
  // Move the closure out and retire the slot before invoking: the task may
  // itself schedule (growing slots_/heap_) or try to cancel its own id.
  InlineTask task = std::move(slots_[top.slot].task);
  ReleaseSlot(top.slot);
  --live_count_;
  now_ = top.when;
  ++counters_.events_executed;
  task();
  return true;
}

void Simulator::Run(TimeMs until) {
  for (;;) {
    const HeapEntry* next = PeekLive();
    if (next == nullptr || next->when > until) return;
    const HeapEntry top = *next;
    PopNext();
    InlineTask task = std::move(slots_[top.slot].task);
    ReleaseSlot(top.slot);
    --live_count_;
    now_ = top.when;
    ++counters_.events_executed;
    task();
  }
}

void Simulator::Reserve(size_t n) {
  heap_.reserve(std::min(n, spill_threshold_));
  slots_.reserve(n);
  // Hint while the buffers are still untouched, so first-touch faults can
  // allocate huge pages directly instead of waiting for a background
  // collapse that may never happen.
  HintHugePages(heap_.data(), heap_.capacity() * sizeof(HeapEntry));
  HintHugePages(slots_.data(), slots_.capacity() * sizeof(Slot));
}

}  // namespace dbmr::sim
