#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dbmr::sim {

EventId Simulator::Schedule(TimeMs delay, std::function<void()> fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(TimeMs when, std::function<void()> fn) {
  DBMR_CHECK(fn != nullptr);
  if (when < now_) when = now_;
  EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  ++counters_.events_scheduled;
  counters_.max_heap_depth =
      std::max<uint64_t>(counters_.max_heap_depth, heap_.size());
  return id;
}

bool Simulator::Cancel(EventId id) {
  // Lazy cancellation: drop the id from the live set; the heap entry is
  // skipped when it reaches the top.
  if (live_.erase(id) == 0) return false;
  ++counters_.events_cancelled;
  return true;
}

bool Simulator::SkimCancelled() {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
  return !heap_.empty();
}

bool Simulator::Step() {
  if (!SkimCancelled()) return false;
  // priority_queue::top() is const-only, but moving the closure out before
  // pop() is safe: the heap never inspects `fn`, so sift-down of a
  // moved-from element is fine.  This avoids a full std::function copy
  // (and its heap allocation) per executed event.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  live_.erase(ev.id);
  now_ = ev.when;
  ++counters_.events_executed;
  ev.fn();
  return true;
}

void Simulator::Run(TimeMs until) {
  while (SkimCancelled()) {
    if (heap_.top().when > until) return;
    Step();
  }
}

}  // namespace dbmr::sim
