#include "sim/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/str.h"

namespace dbmr::sim {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDiskAccessStart:
    case TraceKind::kDiskAccessEnd:
      return "disk-access";
    case TraceKind::kServerStart:
    case TraceKind::kServerEnd:
      return "service";
    case TraceKind::kTxnAdmit:
      return "txn-admit";
    case TraceKind::kReadIssue:
      return "read-issue";
    case TraceKind::kPageReady:
      return "page-ready";
    case TraceKind::kQpStart:
      return "qp-process";
    case TraceKind::kQpEnd:
      return "qp-done";
    case TraceKind::kCollectStart:
      return "collect-recovery-data";
    case TraceKind::kRecoveryStable:
      return "recovery-stable";
    case TraceKind::kHomeWriteIssue:
      return "home-write-issue";
    case TraceKind::kHomeWriteDone:
      return "home-write-done";
    case TraceKind::kCommitStart:
      return "commit-start";
    case TraceKind::kCommitDone:
      return "commit-done";
    case TraceKind::kRestart:
      return "restart";
    case TraceKind::kLogFragment:
      return "log-fragment";
    case TraceKind::kLogForce:
      return "log-force";
    case TraceKind::kFragmentDurable:
      return "fragment-durable";
    case TraceKind::kShadowWrite:
      return "shadow-write";
    case TraceKind::kPtWrite:
      return "pt-write";
    case TraceKind::kUndoRestore:
      return "undo-restore";
  }
  return "unknown";
}

namespace {

/// Chrome phase for an event: begin, end, or instant.
char PhaseOf(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDiskAccessStart:
    case TraceKind::kServerStart:
      return 'B';
    case TraceKind::kDiskAccessEnd:
    case TraceKind::kServerEnd:
      return 'E';
    default:
      return 'i';
  }
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

uint16_t TraceRing::RegisterTrack(const std::string& name) {
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<uint16_t>(i);
  }
  tracks_.push_back(name);
  return static_cast<uint16_t>(tracks_.size() - 1);
}

void TraceRing::Emit(TimeMs when, uint16_t track, TraceKind kind, uint64_t a,
                     uint64_t b) {
  TraceEvent ev{when, a, b, track, kind};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

size_t TraceRing::size() const { return ring_.size(); }

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRing::ToChromeJson() const {
  std::string out;
  out.reserve(ring_.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"dbmr\"}}";
  for (size_t i = 0; i < tracks_.size(); ++i) {
    out += StrFormat(
        ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        i, tracks_[i].c_str());
  }
  if (dropped() > 0) {
    out += StrFormat(
        ",\n{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"s\":\"g\","
        "\"name\":\"ring-dropped-%llu-events\"}",
        static_cast<unsigned long long>(dropped()));
  }
  for (const TraceEvent& ev : Events()) {
    const char ph = PhaseOf(ev.kind);
    // ts is microseconds in the trace_event format; sim time is ms.
    out += StrFormat(
        ",\n{\"ph\":\"%c\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"name\":\"%s\"",
        ph, ev.track, ev.when * 1000.0, TraceKindName(ev.kind));
    if (ph == 'i') out += ",\"s\":\"t\"";
    if (ph != 'E') {
      out += StrFormat(",\"args\":{\"a\":%llu,\"b\":%llu}",
                       static_cast<unsigned long long>(ev.a),
                       static_cast<unsigned long long>(ev.b));
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceRing::WriteChromeJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

std::string TraceRing::Tail(size_t n) const {
  std::vector<TraceEvent> events = Events();
  const size_t start = events.size() > n ? events.size() - n : 0;
  std::string out;
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    out += StrFormat("  [%12.3f ms] %-10s %-22s a=%llu b=%llu\n", ev.when,
                     ev.track < tracks_.size() ? tracks_[ev.track].c_str()
                                               : "?",
                     TraceKindName(ev.kind),
                     static_cast<unsigned long long>(ev.a),
                     static_cast<unsigned long long>(ev.b));
  }
  return out;
}

}  // namespace dbmr::sim
