// Simulated-time definitions.
//
// The paper reports all results in milliseconds; simulated time is a double
// count of milliseconds.  Event ordering ties are broken by insertion
// sequence, so runs are fully deterministic.

#ifndef DBMR_SIM_TIME_H_
#define DBMR_SIM_TIME_H_

#include <limits>

namespace dbmr::sim {

/// Simulated time in milliseconds.
using TimeMs = double;

/// A time later than any schedulable event.
inline constexpr TimeMs kTimeInfinity =
    std::numeric_limits<TimeMs>::infinity();

/// Converts seconds to simulated milliseconds.
constexpr TimeMs SecondsMs(double s) { return s * 1000.0; }

/// Converts microseconds to simulated milliseconds.
constexpr TimeMs MicrosMs(double us) { return us / 1000.0; }

}  // namespace dbmr::sim

#endif  // DBMR_SIM_TIME_H_
