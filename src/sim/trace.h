// Deterministic event tracing for the simulation.
//
// A TraceRing is a fixed-capacity ring of POD trace events (event kind,
// sim time, component track, two payload words).  Components attached to a
// Simulator that carries a ring emit events at their natural state
// transitions (disk access start/end, server dispatch, machine pipeline
// stages); with no ring attached every hook is a single null-pointer
// check, so tracing costs nothing when off and the event-kernel hot path
// (Schedule/Step) is never touched at all.
//
// Because the simulation is single-threaded and deterministic, the ring's
// contents — and the Chrome trace_event JSON rendered from it — are a pure
// function of the model and its seed: byte-identical across runs, thread
// counts, and platforms.  Open an exported file in chrome://tracing or
// https://ui.perfetto.dev.

#ifndef DBMR_SIM_TRACE_H_
#define DBMR_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/status.h"

namespace dbmr::sim {

/// What happened.  Start/End pairs become Chrome "B"/"E" duration events
/// on their component's track; everything else renders as an instant.
enum class TraceKind : uint8_t {
  // Device level (emitted by DiskModel / Server).
  kDiskAccessStart,  ///< a = batch pages, b = target cylinder
  kDiskAccessEnd,    ///< a = accesses so far
  kServerStart,      ///< a = queue length after dispatch
  kServerEnd,        ///< a = jobs completed so far
  // Machine pipeline (emitted by machine::Machine).
  kTxnAdmit,         ///< a = txn
  kReadIssue,        ///< a = txn, b = page
  kPageReady,        ///< a = txn, b = page
  kQpStart,          ///< a = txn, b = page
  kQpEnd,            ///< a = txn, b = page
  kCollectStart,     ///< a = txn, b = page (updated page blocked on WAL)
  kRecoveryStable,   ///< a = txn, b = page (page released for write-back)
  kHomeWriteIssue,   ///< a = txn, b = page
  kHomeWriteDone,    ///< a = txn, b = page
  kCommitStart,      ///< a = txn
  kCommitDone,       ///< a = txn
  kRestart,          ///< a = txn, b = restart count
  // Recovery architectures.
  kLogFragment,      ///< a = txn, b = page (fragment delivered to a LP)
  kLogForce,         ///< a = fragments in the forced group
  kFragmentDurable,  ///< a = txn, b = page (carrying log page on disk)
  kShadowWrite,      ///< a = txn, b = page (copy-on-write block written)
  kPtWrite,          ///< a = txn, b = page-table page (commit flip)
  kUndoRestore,      ///< a = txn, b = page (no-redo before-image restore)
};

const char* TraceKindName(TraceKind kind);

/// One trace record; 32 bytes of POD.
struct TraceEvent {
  TimeMs when = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint16_t track = 0;
  TraceKind kind = TraceKind::kTxnAdmit;
};

/// Fixed-capacity ring keeping the newest events.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRing(size_t capacity = kDefaultCapacity);

  /// Names a component track ("data0", "log1", "machine", ...); returns
  /// its id for Emit.  Registering an existing name returns the same id,
  /// so re-attached components share a track.
  uint16_t RegisterTrack(const std::string& name);

  void Emit(TimeMs when, uint16_t track, TraceKind kind, uint64_t a = 0,
            uint64_t b = 0);

  /// Events currently held (<= capacity).
  size_t size() const;
  /// Events emitted since construction.
  uint64_t total_emitted() const { return total_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return total_ - size(); }
  size_t capacity() const { return capacity_; }
  size_t num_tracks() const { return tracks_.size(); }
  const std::string& track_name(uint16_t track) const {
    return tracks_[track];
  }

  /// The held events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Renders the ring as a Chrome trace_event JSON document
  /// ({"traceEvents": [...]}).  Deterministic: depends only on the events.
  std::string ToChromeJson() const;
  Status WriteChromeJsonFile(const std::string& path) const;

  /// Human-readable dump of the last `n` events (for violation reports).
  std::string Tail(size_t n) const;

 private:
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;     // slot the next event lands in once full
  uint64_t total_ = 0;  // events ever emitted
  std::vector<std::string> tracks_;
};

}  // namespace dbmr::sim

#endif  // DBMR_SIM_TRACE_H_
