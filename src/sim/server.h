// A single-server FCFS queueing station.
//
// Servers model the query processors, page-table processors, log
// processors, and communication channels of the database machine.  Service
// time is computed lazily when a job is dispatched, so it can depend on
// server state at dispatch time.  Disks need batched dispatch and therefore
// have their own model (hw::DiskModel) built on the same simulator.
//
// Callbacks are InlineTask/InlineFn (move-only, small-buffer optimized);
// the done callback of the job in service is parked in the server itself,
// so the completion event's capture is a single pointer and the dispatch
// path never allocates.

#ifndef DBMR_SIM_SERVER_H_
#define DBMR_SIM_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "sim/inline_task.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/stats.h"

namespace dbmr::sim {

/// A unit of work for a Server.
struct Job {
  /// Computes the service time; invoked once, when the job starts service.
  InlineFn<TimeMs()> service;
  /// Invoked when service completes.
  InlineTask done;
};

/// Single server with an unbounded FCFS queue and utilization accounting.
class Server {
 public:
  Server(Simulator* sim, std::string name);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  virtual ~Server() = default;

  /// Enqueues a job; it starts immediately if the server is idle.
  void Submit(Job job);

  /// Convenience overload with a fixed service time.
  void Submit(TimeMs service_time, InlineTask done);

  bool busy() const { return busy_; }
  size_t QueueLength() const { return queue_.size(); }
  const std::string& name() const { return name_; }

  /// Fraction of time busy over [construction, now].
  double Utilization() const { return busy_stat_.Average(sim_->Now()); }

  /// Time-weighted average queue length (excluding the job in service).
  double AvgQueueLength() const { return queue_stat_.Average(sim_->Now()); }

  /// Longest the queue ever got (excluding the job in service).
  size_t max_queue_length() const { return max_queue_; }

  const RunningStat& wait_stat() const { return wait_stat_; }
  const RunningStat& service_stat() const { return service_stat_; }
  uint64_t jobs_completed() const { return completed_; }

 protected:
  Simulator* sim() { return sim_; }

 private:
  struct Pending {
    Job job;
    TimeMs enqueued;
  };

  void StartNext();
  void OnComplete();

  Simulator* sim_;
  std::string name_;
  uint16_t track_ = 0;  // trace track, registered when the sim carries one
  bool busy_ = false;
  std::deque<Pending> queue_;
  InlineTask in_service_done_;  // done callback of the job in service
  size_t max_queue_ = 0;
  uint64_t completed_ = 0;
  TimeWeightedStat busy_stat_;
  TimeWeightedStat queue_stat_;
  RunningStat wait_stat_;
  RunningStat service_stat_;
};

}  // namespace dbmr::sim

#endif  // DBMR_SIM_SERVER_H_
