// Common identifier types for transactions and pages.

#ifndef DBMR_TXN_TYPES_H_
#define DBMR_TXN_TYPES_H_

#include <cstdint>

namespace dbmr::txn {

/// Transaction identifier; assigned monotonically by the scheduler.
using TxnId = uint64_t;

/// Logical page identifier, global across the database.
using PageId = uint64_t;

/// Sentinel for "no transaction".
inline constexpr TxnId kNoTxn = 0;

}  // namespace dbmr::txn

#endif  // DBMR_TXN_TYPES_H_
