#include "txn/lock_manager.h"

#include <algorithm>
#include <utility>

namespace dbmr::txn {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

bool LockManager::Compatible(const PageLock& pl, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : pl.holders) {
    if (holder == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

AcquireResult LockManager::Acquire(TxnId txn, PageId page, LockMode mode,
                                   GrantCallback on_grant) {
  PageLock& pl = table_[page];

  auto held_it = pl.holders.find(txn);
  const bool already_holds = held_it != pl.holders.end();
  if (already_holds) {
    // Re-request in same or weaker mode: immediate.
    if (held_it->second == LockMode::kExclusive ||
        mode == LockMode::kShared) {
      return AcquireResult::kGranted;
    }
    // S -> X upgrade.
    if (Compatible(pl, txn, LockMode::kExclusive)) {
      held_it->second = LockMode::kExclusive;
      return AcquireResult::kGranted;
    }
    if (WouldDeadlock(txn, page, LockMode::kExclusive)) {
      ++deadlocks_;
      return AcquireResult::kDeadlock;
    }
    // Upgrades wait ahead of ordinary requests to avoid upgrade starvation.
    pl.waiters.push_front(
        Request{txn, LockMode::kExclusive, /*is_upgrade=*/true,
                std::move(on_grant)});
    waiting_on_[txn].insert(page);
    ++waits_;
    return AcquireResult::kWaiting;
  }

  // Fresh request: grant only if compatible AND nobody is already queued
  // (FCFS, prevents writer starvation).
  if (pl.waiters.empty() && Compatible(pl, txn, mode)) {
    pl.holders.emplace(txn, mode);
    held_[txn].insert(page);
    return AcquireResult::kGranted;
  }
  if (WouldDeadlock(txn, page, mode)) {
    ++deadlocks_;
    return AcquireResult::kDeadlock;
  }
  pl.waiters.push_back(Request{txn, mode, false, std::move(on_grant)});
  waiting_on_[txn].insert(page);
  ++waits_;
  return AcquireResult::kWaiting;
}

bool LockManager::TryAcquire(TxnId txn, PageId page, LockMode mode) {
  PageLock& pl = table_[page];
  auto held_it = pl.holders.find(txn);
  if (held_it != pl.holders.end()) {
    if (held_it->second == LockMode::kExclusive ||
        mode == LockMode::kShared) {
      return true;
    }
    if (Compatible(pl, txn, LockMode::kExclusive)) {
      held_it->second = LockMode::kExclusive;
      return true;
    }
    return false;
  }
  if (pl.waiters.empty() && Compatible(pl, txn, mode)) {
    pl.holders.emplace(txn, mode);
    held_[txn].insert(page);
    return true;
  }
  if (pl.holders.empty() && pl.waiters.empty()) table_.erase(page);
  return false;
}

Status LockManager::Release(TxnId txn, PageId page) {
  auto it = table_.find(page);
  if (it == table_.end() || it->second.holders.erase(txn) == 0) {
    return Status::NotFound("lock not held");
  }
  auto held_it = held_.find(txn);
  if (held_it != held_.end()) {
    held_it->second.erase(page);
    if (held_it->second.empty()) held_.erase(held_it);
  }
  PumpQueue(page);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  // Drop queued requests first so PumpQueue never grants to a dying txn.
  auto wait_it = waiting_on_.find(txn);
  if (wait_it != waiting_on_.end()) {
    for (PageId page : wait_it->second) {
      auto it = table_.find(page);
      if (it == table_.end()) continue;
      auto& waiters = it->second.waiters;
      waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                   [txn](const Request& r) {
                                     return r.txn == txn;
                                   }),
                    waiters.end());
    }
    waiting_on_.erase(wait_it);
  }

  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  std::vector<PageId> pages(held_it->second.begin(), held_it->second.end());
  held_.erase(held_it);
  for (PageId page : pages) {
    auto it = table_.find(page);
    if (it == table_.end()) continue;
    it->second.holders.erase(txn);
    PumpQueue(page);
  }
}

void LockManager::CancelWaiting(TxnId txn) {
  auto wait_it = waiting_on_.find(txn);
  if (wait_it == waiting_on_.end()) return;
  std::vector<PageId> pages(wait_it->second.begin(), wait_it->second.end());
  waiting_on_.erase(wait_it);
  for (PageId page : pages) {
    auto it = table_.find(page);
    if (it == table_.end()) continue;
    auto& waiters = it->second.waiters;
    waiters.erase(std::remove_if(
                      waiters.begin(), waiters.end(),
                      [txn](const Request& r) { return r.txn == txn; }),
                  waiters.end());
    // The cancelled request may have been the queue head blocking later
    // compatible requests.
    PumpQueue(page);
  }
}

void LockManager::Reset() {
  table_.clear();
  held_.clear();
  waiting_on_.clear();
}

void LockManager::PumpQueue(PageId page) {
  auto it = table_.find(page);
  if (it == table_.end()) return;
  PageLock& pl = it->second;

  std::vector<GrantCallback> callbacks;
  while (!pl.waiters.empty()) {
    Request& front = pl.waiters.front();
    if (front.is_upgrade) {
      if (!Compatible(pl, front.txn, LockMode::kExclusive)) break;
      pl.holders[front.txn] = LockMode::kExclusive;
      // The base lock may have been released while the upgrade waited;
      // (re-)index the hold so ReleaseAll keeps working.
      held_[front.txn].insert(page);
    } else {
      if (!Compatible(pl, front.txn, front.mode)) break;
      // The transaction may already hold the page (e.g. an S grant raced
      // ahead of this queued X request); never downgrade, and upgrade an
      // existing hold when this request is exclusive.
      auto [holder, inserted] = pl.holders.emplace(front.txn, front.mode);
      if (!inserted && front.mode == LockMode::kExclusive) {
        holder->second = LockMode::kExclusive;
      }
      held_[front.txn].insert(page);
    }
    auto waiting_it = waiting_on_.find(front.txn);
    if (waiting_it != waiting_on_.end()) {
      waiting_it->second.erase(page);
      if (waiting_it->second.empty()) waiting_on_.erase(waiting_it);
    }
    if (front.on_grant) callbacks.push_back(std::move(front.on_grant));
    pl.waiters.pop_front();
  }
  if (pl.holders.empty() && pl.waiters.empty()) table_.erase(it);

  // Fire callbacks after the table is consistent; grants may re-enter.
  for (auto& cb : callbacks) cb();
}

void LockManager::BlockersOf(TxnId txn, PageId page, LockMode mode,
                             std::vector<TxnId>* out) const {
  auto it = table_.find(page);
  if (it == table_.end()) return;
  const PageLock& pl = it->second;
  for (const auto& [holder, held_mode] : pl.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      out->push_back(holder);
    }
  }
  // FCFS: we also wait behind every queued request (they will be granted
  // first), so they are blockers too.
  for (const auto& r : pl.waiters) {
    if (r.txn != txn) out->push_back(r.txn);
  }
}

bool LockManager::WouldDeadlock(TxnId waiter, PageId page,
                                LockMode mode) const {
  // DFS over the waits-for graph starting from the transactions `waiter`
  // would block on; a path back to `waiter` is a cycle.
  std::vector<TxnId> stack;
  BlockersOf(waiter, page, mode, &stack);
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    TxnId t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    if (!visited.insert(t).second) continue;
    auto it = waiting_on_.find(t);
    if (it == waiting_on_.end()) continue;
    for (PageId p : it->second) {
      auto tbl = table_.find(p);
      if (tbl == table_.end()) continue;
      // Mode t is waiting for on p:
      LockMode wmode = LockMode::kShared;
      for (const auto& r : tbl->second.waiters) {
        if (r.txn == t) {
          wmode = r.mode;
          break;
        }
      }
      BlockersOf(t, p, wmode, &stack);
    }
  }
  return false;
}

bool LockManager::Holds(TxnId txn, PageId page, LockMode mode) const {
  auto it = table_.find(page);
  if (it == table_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

size_t LockManager::LockCount(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

size_t LockManager::TotalGranted() const {
  size_t n = 0;
  for (const auto& [page, pl] : table_) n += pl.holders.size();
  return n;
}

size_t LockManager::TotalWaiting() const {
  size_t n = 0;
  for (const auto& [page, pl] : table_) n += pl.waiters.size();
  return n;
}

std::vector<PageId> LockManager::HeldPages(TxnId txn) const {
  auto it = held_.find(txn);
  if (it == held_.end()) return {};
  return std::vector<PageId>(it->second.begin(), it->second.end());
}

}  // namespace dbmr::txn
