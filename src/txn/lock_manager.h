// Page-level two-phase locking with deadlock detection.
//
// The paper assumes "a scheduler, located in the back-end controller, which
// employs page-level locking".  This lock manager serves both the
// functional storage engine and the machine simulator: it is synchronous
// and callback-based, never blocks a thread, and reports deadlocks at
// request time by searching the waits-for graph, so the caller can abort
// the victim.
//
// Semantics:
//  * Shared locks are compatible with shared locks; exclusive conflicts
//    with everything.
//  * Requests queue FCFS per page; a request is granted when every granted
//    lock on the page is compatible and no earlier queued request remains
//    (no starvation / barging).
//  * A transaction re-requesting a lock it holds in the same or stronger
//    mode is granted immediately.  An S->X upgrade is granted when the
//    transaction is the sole holder, and otherwise waits with priority
//    ahead of new requests.
//  * A request that would close a cycle in the waits-for graph is denied
//    with kDeadlock and is NOT enqueued; the caller is expected to abort
//    the transaction (the paper's victim policy is unspecified; we choose
//    "requester dies", the simplest deterministic rule).

#ifndef DBMR_TXN_LOCK_MANAGER_H_
#define DBMR_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/inline_task.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::txn {

/// Lock modes supported by the page-level scheduler.
enum class LockMode {
  kShared,
  kExclusive,
};

const char* LockModeName(LockMode mode);

/// Outcome of an Acquire call.
enum class AcquireResult {
  kGranted,   ///< The lock is held on return.
  kWaiting,   ///< Queued; the grant callback fires later.
  kDeadlock,  ///< Denied: granting would create a waits-for cycle.
};

/// The page-level lock manager.
class LockManager {
 public:
  /// Grant continuations are inline-storage callables: the machine's
  /// per-read wait closure fits the 48-byte buffer, so queueing a lock
  /// wait allocates nothing (std::function heap-allocated every one).
  using GrantCallback = sim::InlineTask;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `page` in `mode` for `txn`.  If the result is kWaiting,
  /// `on_grant` is invoked (possibly re-entrantly from a later Release)
  /// once the lock is granted.  On kGranted / kDeadlock the callback is
  /// never invoked.
  AcquireResult Acquire(TxnId txn, PageId page, LockMode mode,
                        GrantCallback on_grant);

  /// No-wait variant: grants immediately or returns false without queueing
  /// (used by the synchronous functional engines).
  bool TryAcquire(TxnId txn, PageId page, LockMode mode);

  /// Releases one lock.  Returns NotFound if the lock is not held.
  Status Release(TxnId txn, PageId page);

  /// Releases all locks of `txn` and removes its queued requests.
  void ReleaseAll(TxnId txn);

  /// Removes `txn`'s queued requests without releasing its granted locks
  /// (grant callbacks are discarded, not invoked).  Used for a deadlock
  /// victim that must stop waiting immediately but keeps its locks until
  /// its abort — which may need I/O to undo in-place writes — completes.
  void CancelWaiting(TxnId txn);

  /// Drops every lock and queued request (crash of the volatile lock
  /// table).  Grant callbacks are discarded, not invoked.
  void Reset();

  /// True if `txn` holds `page` in at least `mode`.
  bool Holds(TxnId txn, PageId page, LockMode mode) const;

  /// Number of locks currently granted to `txn`.
  size_t LockCount(TxnId txn) const;

  /// Total granted locks across all transactions.
  size_t TotalGranted() const;

  /// Total queued (waiting) requests.
  size_t TotalWaiting() const;

  /// Pages `txn` currently holds (for commit-time bookkeeping).
  std::vector<PageId> HeldPages(TxnId txn) const;

  uint64_t deadlocks_detected() const { return deadlocks_; }
  uint64_t waits() const { return waits_; }

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool is_upgrade = false;
    GrantCallback on_grant;
  };
  struct PageLock {
    // Granted holders and their modes.  With an exclusive holder this has
    // exactly one entry.
    std::unordered_map<TxnId, LockMode> holders;
    std::deque<Request> waiters;
  };

  /// True if `mode` can be granted on `pl` to `txn` right now.
  static bool Compatible(const PageLock& pl, TxnId txn, LockMode mode);

  /// Grants queue heads that have become compatible; fires callbacks.
  void PumpQueue(PageId page);

  /// Would txn waiting on `page` create a waits-for cycle?
  bool WouldDeadlock(TxnId waiter, PageId page, LockMode mode) const;

  /// Transactions `txn` would wait for if queued on `page`.
  void BlockersOf(TxnId txn, PageId page, LockMode mode,
                  std::vector<TxnId>* out) const;

  std::unordered_map<PageId, PageLock> table_;
  std::unordered_map<TxnId, std::unordered_set<PageId>> held_;
  // Pages each transaction is queued on (at most one in 2PL usage, but the
  // structure allows more).
  std::unordered_map<TxnId, std::unordered_set<PageId>> waiting_on_;
  uint64_t deadlocks_ = 0;
  uint64_t waits_ = 0;
};

}  // namespace dbmr::txn

#endif  // DBMR_TXN_LOCK_MANAGER_H_
