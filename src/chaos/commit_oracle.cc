#include "chaos/commit_oracle.h"

#include <utility>

#include "util/str.h"

namespace dbmr::chaos {

CommitOracle::CommitOracle(uint64_t num_pages, size_t payload_size)
    : num_pages_(num_pages),
      payload_size_(payload_size),
      zero_page_(payload_size, 0) {}

void CommitOracle::Reset() {
  committed_.clear();
  active_.clear();
  in_doubt_.clear();
}

void CommitOracle::OnWrite(txn::TxnId t, txn::PageId page,
                           const PageData& payload) {
  active_[t][page] = payload;
}

void CommitOracle::OnAbort(txn::TxnId t) { active_.erase(t); }

void CommitOracle::OnCommitOk(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) return;  // read-only or writeless transaction
  for (auto& [page, data] : it->second) committed_[page] = data;
  active_.erase(it);
}

void CommitOracle::OnCommitInDoubt(txn::TxnId t) {
  auto it = active_.find(t);
  DBMR_CHECK(in_doubt_.empty());  // one fault per replay
  if (it != active_.end()) {
    in_doubt_ = std::move(it->second);
    active_.erase(it);
  }
}

void CommitOracle::OnCrash() { active_.clear(); }

PageData CommitOracle::Expected(txn::PageId page) const {
  return ExpectedRef(page);
}

const PageData& CommitOracle::ExpectedRef(txn::PageId page) const {
  auto it = committed_.find(page);
  return it != committed_.end() ? it->second : zero_page_;
}

Status CommitOracle::Verify(store::PageEngine* e,
                            InDoubtResolution* resolution,
                            std::string* detail) const {
  if (resolution != nullptr) *resolution = InDoubtResolution::kNone;

  auto fail = [&](std::string msg) {
    if (detail != nullptr) *detail = msg;
    return Status::Internal(std::move(msg));
  };

  auto t = e->Begin();
  if (!t.ok()) {
    if (detail != nullptr) *detail = "Begin: " + t.status().ToString();
    return t.status();
  }

  // Classify the in-doubt transaction's pages: did its image surface?
  int saw_new = 0, saw_old = 0;
  Status result = Status::OK();
  PageData got;  // reused across pages
  for (txn::PageId page = 0; page < num_pages_; ++page) {
    Status st = e->Read(*t, page, &got);
    if (!st.ok()) {
      (void)e->Abort(*t);
      if (detail != nullptr) {
        *detail = StrFormat("Read(page %llu): %s",
                            static_cast<unsigned long long>(page),
                            st.ToString().c_str());
      }
      return st;
    }
    const PageData& want_old = ExpectedRef(page);
    auto in_doubt = in_doubt_.find(page);
    if (in_doubt == in_doubt_.end()) {
      if (got != want_old) {
        result = fail(StrFormat(
            "page %llu diverges from the committed state",
            static_cast<unsigned long long>(page)));
        break;
      }
      continue;
    }
    const PageData& want_new = in_doubt->second;
    const bool matches_new = got == want_new;
    const bool matches_old = got == want_old;
    if (matches_new && matches_old) continue;  // indistinguishable
    if (matches_new) {
      ++saw_new;
    } else if (matches_old) {
      ++saw_old;
    } else {
      result = fail(StrFormat(
          "page %llu matches neither the pre- nor post-commit image of "
          "the in-doubt transaction",
          static_cast<unsigned long long>(page)));
      break;
    }
  }
  (void)e->Abort(*t);
  if (!result.ok()) return result;

  if (saw_new > 0 && saw_old > 0) {
    return fail(StrFormat(
        "in-doubt transaction surfaced partially (%d pages new, %d pages "
        "old): atomicity violated",
        saw_new, saw_old));
  }
  if (resolution != nullptr && !in_doubt_.empty()) {
    *resolution = saw_new > 0   ? InDoubtResolution::kCommitted
                  : saw_old > 0 ? InDoubtResolution::kRolledBack
                                : InDoubtResolution::kEither;
  }
  return Status::OK();
}

}  // namespace dbmr::chaos
