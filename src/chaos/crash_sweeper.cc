#include "chaos/crash_sweeper.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/thread_pool.h"
#include "util/rng.h"
#include "util/str.h"

namespace dbmr::chaos {

namespace {

/// Backstop for the nested sweeps: recovery of these fixtures performs at
/// most a few hundred I/Os, so a nested index this large means recovery
/// never manages to complete and the sweep would not terminate.
constexpr int64_t kNestedSweepCap = 100000;

PageData RandomPayload(Rng& rng, size_t n) {
  PageData p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(rng.Next());
  return p;
}

}  // namespace

JsonValue Violation::ToJson() const {
  JsonValue v = JsonValue::Object();
  v["engine"] = engine;
  v["kind"] = kind;
  v["seed"] = seed;
  v["crash_index"] = crash_index;
  v["nested_index"] = nested_index;
  v["detail"] = detail;
  v["repro"] = repro;
  return v;
}

JsonValue SweepReport::ToJson(bool include_timing) const {
  JsonValue v = JsonValue::Object();
  v["engine"] = engine;
  v["seed"] = seed;
  v["completed"] = completed;
  v["schedules"] = schedules;
  v["write_crash_points"] = write_crash_points;
  v["nested_write_crash_points"] = nested_write_crash_points;
  v["nested_read_crash_points"] = nested_read_crash_points;
  v["transient_points"] = transient_points;
  JsonValue flips = JsonValue::Object();
  flips["trials"] = bit_flips.trials;
  flips["detected"] = bit_flips.detected;
  flips["masked"] = bit_flips.masked;
  flips["silent"] = bit_flips.silent;
  v["bit_flips"] = std::move(flips);
  v["disk_reads"] = disk_reads;
  v["disk_writes"] = disk_writes;
  v["replay_records"] = replay_records;
  v["io_retries"] = io_retries;
  v["io_giveups"] = io_giveups;
  // Wall-clock: only on request, so the default report stays
  // byte-identical across runs and job counts.
  if (include_timing) v["recovery_ms"] = recovery_ms;
  JsonValue f = JsonValue::Object();
  f["write_failures"] = faults.write_failures;
  f["read_failures"] = faults.read_failures;
  f["transient_writes"] = faults.transient_writes;
  f["transient_reads"] = faults.transient_reads;
  f["torn_writes"] = faults.torn_writes;
  f["bit_flips"] = faults.bit_flips;
  f["media_failures"] = faults.media_failures;
  f["corruptions"] = faults.corruptions;
  f["checksum_errors"] = faults.checksum_errors;
  v["faults_injected"] = std::move(f);
  if (media_swept) {
    JsonValue m = JsonValue::Object();
    m["media_crash_points"] = media_crash_points;
    m["media_recover_crash_points"] = media_recover_crash_points;
    m["media_data_loss"] = media_data_loss;
    m["scrub_injected"] = scrub_injected;
    m["scrub_detected"] = scrub_detected;
    v["media"] = std::move(m);
  }
  JsonValue viols = JsonValue::Array();
  for (const Violation& viol : violations) viols.Append(viol.ToJson());
  v["violations"] = std::move(viols);
  return v;
}

CrashSweeper::CrashSweeper(std::string engine_name, SweepOptions options)
    : name_(std::move(engine_name)), opts_(options), forkable_(true) {
  factory_ = [this]() { return MakeEngineFixture(name_, opts_.fixture); };
}

CrashSweeper::CrashSweeper(std::string engine_name, FixtureFactory factory,
                           SweepOptions options)
    : name_(std::move(engine_name)),
      factory_(std::move(factory)),
      opts_(options) {}

Violation CrashSweeper::MakeViolation(const std::string& kind,
                                      int64_t crash_index,
                                      int64_t nested_index, bool nested_reads,
                                      const std::string& detail) const {
  Violation v;
  v.engine = name_;
  v.kind = kind;
  v.seed = opts_.seed;
  v.crash_index = crash_index;
  v.nested_index = nested_index;
  v.detail = detail;
  std::string repro = StrFormat(
      "dbmr_torture --engine=%s --seed=%llu --txns=%d", name_.c_str(),
      static_cast<unsigned long long>(opts_.seed), opts_.txns);
  if (crash_index >= 0) {
    repro += StrFormat(" --crash-index=%lld",
                       static_cast<long long>(crash_index));
  }
  if (nested_index >= 0) {
    repro += StrFormat(" --nested-index=%lld",
                       static_cast<long long>(nested_index));
    if (nested_reads) repro += " --nested-reads";
  }
  if (opts_.torn_writes) repro += " --torn";
  if (opts_.media_faults) repro += " --media-faults";
  if (opts_.fixture.log_mirroring) repro += " --log-mirroring";
  if (opts_.fixture.archive) repro += " --archive";
  v.repro = std::move(repro);
  return v;
}

void CrashSweeper::AddViolation(SweepReport* report, const std::string& kind,
                                int64_t crash_index, int64_t nested_index,
                                bool nested_reads,
                                const std::string& detail) const {
  report->violations.push_back(
      MakeViolation(kind, crash_index, nested_index, nested_reads, detail));
}

void CrashSweeper::Absorb(const EngineFixture& fx,
                          SweepReport* report) const {
  report->disk_reads += fx.TotalReads();
  report->disk_writes += fx.TotalWrites();
  report->faults += fx.TotalFaults();
  const store::IoRetryStats rs = fx.engine->io_retry_stats();
  report->io_retries += rs.retries;
  report->io_giveups += rs.giveups;
}

Status CrashSweeper::RecoverTimed(EngineFixture& fx, double* ms,
                                  int64_t* records) {
  const auto t0 = std::chrono::steady_clock::now();
  Status st = fx.engine->Recover();
  const auto t1 = std::chrono::steady_clock::now();
  *ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Counted even when Recover() fails: a cut-down recovery still examined
  // records, and the deterministic tally must not depend on timing.
  *records +=
      static_cast<int64_t>(fx.engine->last_recovery_stats().replay_records);
  return st;
}

/// Everything one instrumented, fault-free ("golden") replay of the seeded
/// workload learned, shared read-only by every forked trial.
struct CrashSweeper::GoldenTrace {
  /// Which engine entry point a disk write happened inside.  A crash at
  /// that write cuts this call down, which decides how the oracle sees
  /// the victim transaction (in doubt only for kCommit).
  enum class Op { kBegin, kRead, kWrite, kCommit, kAbort };

  /// One oracle transition, re-playable onto a fresh CommitOracle.
  struct OracleOp {
    enum class Kind { kWrite, kCommitOk, kAbort };
    Kind kind = Kind::kWrite;
    txn::TxnId txn = 0;
    txn::PageId page = 0;
    PageData data;  // kWrite only
  };

  /// One successful disk write, in global (shared write budget) order.
  struct WriteEvent {
    size_t disk = 0;
    store::BlockId block = 0;
    PageData data;
    Op op = Op::kBegin;     ///< engine call this write happened inside
    txn::TxnId txn = 0;     ///< transaction of that call (0 for Begin)
    size_t ops_logged = 0;  ///< oracle ops completed before this write
  };

  std::vector<WriteEvent> writes;
  std::vector<OracleOp> ops;
  /// checkpoints[j] = disk images after j*stride successful writes
  /// (checkpoints[0] is the freshly formatted store).
  std::vector<FixtureSnapshot> checkpoints;
  /// oracle_checkpoints[j] = oracle state when checkpoints[j] was taken,
  /// with ops_at_checkpoint[j] transitions already folded in, so a trial
  /// rebuilds its oracle from the nearest checkpoint plus the op tail
  /// instead of replaying every transition from the start.
  std::vector<CommitOracle> oracle_checkpoints;
  std::vector<size_t> ops_at_checkpoint;
  FixtureSnapshot final_state;  ///< after the whole replay
  /// Per-disk I/O performed by the replay alone (Format excluded); the
  /// transient sweep uses these to enumerate its fault points.
  std::vector<uint64_t> replay_writes;
  std::vector<uint64_t> replay_reads;
  int64_t stride = 4;
  uint64_t num_pages = 0;
  size_t payload_size = 0;
  Status error;  ///< first non-fault failure during the golden replay

  // Scratch the write observers read: the engine call currently running.
  Op cur_op = Op::kBegin;
  txn::TxnId cur_txn = 0;
};

/// What one forked trial produced, merged into the report in index order.
struct CrashSweeper::TrialResult {
  std::vector<Violation> violations;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  store::FaultCounters faults;
  /// Recovery attribution of every Recover() this trial ran (see
  /// SweepReport::replay_records / recovery_ms).
  double recovery_ms = 0;
  int64_t replay_records = 0;
  int64_t io_retries = 0;
  int64_t io_giveups = 0;
  /// Plain trials: I/O an unconstrained Recover() performed, measured
  /// before verification — it bounds the nested sweep exactly (budget n
  /// lets n operations through, so n = recovery_writes is the first
  /// budget recovery completes under).
  int64_t recovery_writes = 0;
  int64_t recovery_reads = 0;
  /// False for the terminal nested trial (recovery completed): it ends
  /// the nested enumeration instead of counting as a crash point.
  bool counted = true;
  bool fired = false;           ///< transient trials: the armed fault fired
  bool workload_error = false;  ///< transient trials: replay errored
  int flip_outcome = -1;  ///< bit flips: 0 detected / 1 masked / 2 silent
};

CrashSweeper::ReplayOutcome CrashSweeper::Replay(EngineFixture& fx,
                                                 CommitOracle& oracle,
                                                 bool transient,
                                                 GoldenTrace* trace) {
  ReplayOutcome out;
  Rng rng(opts_.seed);
  store::PageEngine* e = fx.engine.get();
  const uint64_t pages = e->num_pages();
  const size_t payload = e->payload_size();

  // Golden-replay instrumentation: tag which engine call is running (the
  // write observers stamp it onto each WriteEvent) and log every oracle
  // transition so trials can rebuild the oracle at any write index.
  using Op = GoldenTrace::Op;
  using OracleOp = GoldenTrace::OracleOp;
  auto mark = [&](Op op, txn::TxnId txn) {
    if (trace != nullptr) {
      trace->cur_op = op;
      trace->cur_txn = txn;
    }
  };
  auto log_write = [&](txn::TxnId txn, txn::PageId page,
                       const PageData& data) {
    if (trace != nullptr) {
      trace->ops.push_back(
          {OracleOp::Kind::kWrite, txn, page, data});
    }
    oracle.OnWrite(txn, page, data);
  };
  auto log_abort = [&](txn::TxnId txn) {
    if (trace != nullptr) {
      trace->ops.push_back({OracleOp::Kind::kAbort, txn, 0, {}});
    }
    oracle.OnAbort(txn);
  };
  auto log_commit_ok = [&](txn::TxnId txn) {
    if (trace != nullptr) {
      trace->ops.push_back({OracleOp::Kind::kCommitOk, txn, 0, {}});
    }
    oracle.OnCommitOk(txn);
  };

  // In transient mode the single armed fault heals itself, so a retry of
  // the failed operation (or an abort of the victim transaction) must keep
  // the workload running with no crash-recovery needed.  In fail-stop mode
  // the first kIoError is the injected crash point: stop right there.
  for (int i = 0; i < opts_.txns; ++i) {
    mark(Op::kBegin, 0);
    auto t = e->Begin();
    if (!t.ok() && t.status().IsIoError() && transient) t = e->Begin();
    if (!t.ok()) {
      if (t.status().IsIoError()) {
        out.crashed = true;
      } else {
        out.error = t.status();
      }
      return out;
    }

    if (opts_.reads_in_workload) {
      const txn::PageId page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      PageData got;
      mark(Op::kRead, *t);
      Status st = e->Read(*t, page, &got);
      if (!st.ok() && st.IsIoError() && transient) st = e->Read(*t, page, &got);
      if (!st.ok()) {
        if (st.IsIoError()) {
          out.crashed = true;
          out.txn_in_flight = true;
          out.victim = *t;
        } else {
          out.error = st;
        }
        return out;
      }
      if (got != oracle.ExpectedRef(page)) {
        out.error = Status::Internal(StrFormat(
            "workload read of page %llu diverges from the committed state",
            static_cast<unsigned long long>(page)));
        return out;
      }
    }

    const int n_writes =
        static_cast<int>(rng.UniformInt(1, opts_.max_writes_per_txn));
    bool txn_gone = false;
    for (int w = 0; w < n_writes; ++w) {
      const txn::PageId page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      const PageData data = RandomPayload(rng, payload);
      mark(Op::kWrite, *t);
      Status st = e->Write(*t, page, data);
      if (st.ok()) {
        log_write(*t, page, data);
        continue;
      }
      if (!st.IsIoError()) {
        out.error = st;
        return out;
      }
      if (!transient) {
        out.crashed = true;
        out.txn_in_flight = true;
        out.victim = *t;
        return out;
      }
      // Transient write fault: the disk healed, but the engine may have
      // torn down internal state for the failed write, so the safe
      // self-healing response is to abort the victim and move on.
      Status ab = e->Abort(*t);
      if (!ab.ok() && ab.IsIoError()) ab = e->Abort(*t);
      if (ab.ok() || ab.code() == StatusCode::kFailedPrecondition) {
        log_abort(*t);
        txn_gone = true;
        break;
      }
      out.crashed = true;
      out.txn_in_flight = true;
      out.victim = *t;
      return out;
    }
    // Keep the rng stream aligned across replays regardless of faults:
    // the commit/abort coin is always tossed.
    const bool abort = rng.Bernoulli(opts_.abort_prob);
    if (txn_gone) continue;

    mark(abort ? Op::kAbort : Op::kCommit, *t);
    Status st = abort ? e->Abort(*t) : e->Commit(*t);
    if (st.ok()) {
      if (abort) {
        log_abort(*t);
      } else {
        log_commit_ok(*t);
      }
      continue;
    }
    if (!st.IsIoError()) {
      out.error = st;
      return out;
    }
    if (abort) {
      // The abort was cut down; the transaction dies with the crash and
      // its writes must not surface — same contract either way.  In
      // transient mode retry once (the fault healed).
      if (transient) {
        Status ab = e->Abort(*t);
        if (ab.ok() || ab.code() == StatusCode::kFailedPrecondition) {
          log_abort(*t);
          continue;
        }
      }
      out.crashed = true;
      out.txn_in_flight = true;
      out.victim = *t;
      return out;
    }
    // Commit was cut down: the transaction is in doubt.  Even a transient
    // fault forces crash-recovery here — the engine cannot tell how much
    // of the commit reached stable storage.
    oracle.OnCommitInDoubt(*t);
    out.crashed = true;
    out.in_doubt = true;
    out.victim = *t;
    return out;
  }
  return out;
}

bool CrashSweeper::CrashPoint(SweepReport* report, int64_t budget,
                              int64_t nested_index, bool nested_reads) {
  auto fxr = MakeFixture();
  if (!fxr.ok()) {
    AddViolation(report, "fixture", budget, nested_index, nested_reads,
                 fxr.status().ToString());
    return true;  // nothing more to sweep
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
  if (opts_.torn_writes) fx.SetTornWrites(true, opts_.torn_prefix_bytes);

  fx.ArmWrites(budget);
  ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
  ++report->schedules;

  auto finish = [&]() { Absorb(fx, report); };

  if (!out.error.ok()) {
    AddViolation(report, "workload", budget, nested_index, nested_reads,
                 out.error.ToString());
    finish();
    return true;
  }

  if (!out.crashed) {
    // The whole workload fit under the budget: verify the final state and
    // signal natural termination of the write-crash sweep.
    fx.Disarm();
    std::string detail;
    Status st = oracle.Verify(fx.engine.get(), nullptr, &detail);
    if (!st.ok()) {
      AddViolation(report, "final-state", budget, nested_index, nested_reads,
                   detail.empty() ? st.ToString() : detail);
    }
    finish();
    return true;
  }

  // The injected crash point fired: lose volatile state.
  oracle.OnCrash();
  fx.engine->Crash();

  if (nested_index >= 0) {
    // Cut Recover() itself down after `nested_index` writes (or reads).
    fx.Disarm();
    if (nested_reads) {
      fx.ArmReads(nested_index);
    } else {
      fx.ArmWrites(nested_index);
    }
    Status st = RecoverTimed(fx, &report->recovery_ms,
                             &report->replay_records);
    if (st.ok()) {
      if (fx.AnyCrashed()) {
        AddViolation(report, "recover-swallowed-fault", budget, nested_index,
                     nested_reads,
                     "Recover() reported success although an injected fault "
                     "fired during it");
        finish();
        return true;
      }
      // Recovery completed without reaching the nested fault: this outer
      // crash point's nested sweep is exhausted.
      finish();
      return true;
    }
    // Recovery itself crashed; a second recovery must succeed and restore
    // a correct state.
    fx.engine->Crash();
    fx.Disarm();
    Status st2 = RecoverTimed(fx, &report->recovery_ms,
                              &report->replay_records);
    if (!st2.ok()) {
      AddViolation(report, "nested-recover", budget, nested_index,
                   nested_reads, st2.ToString());
      finish();
      return false;
    }
    std::string detail;
    InDoubtResolution res = InDoubtResolution::kNone;
    Status vst = oracle.Verify(fx.engine.get(), &res, &detail);
    if (!vst.ok()) {
      AddViolation(report, "nested-post-state", budget, nested_index,
                   nested_reads, detail.empty() ? vst.ToString() : detail);
    }
    finish();
    return false;
  }

  // Plain crash point: recover once and verify.
  fx.Disarm();
  Status st = RecoverTimed(fx, &report->recovery_ms,
                           &report->replay_records);
  if (!st.ok()) {
    AddViolation(report, "recover", budget, -1, false, st.ToString());
    finish();
    return false;
  }
  std::string detail;
  InDoubtResolution first = InDoubtResolution::kNone;
  Status vst = oracle.Verify(fx.engine.get(), &first, &detail);
  if (!vst.ok()) {
    AddViolation(report, "post-crash-state", budget, -1, false,
                 detail.empty() ? vst.ToString() : detail);
    finish();
    return false;
  }

  if (opts_.double_recover) {
    // Idempotence: crashing again right after recovery and recovering a
    // second time must succeed and must not flip the fate of an in-doubt
    // transaction (kCommitted <-> kRolledBack).
    fx.engine->Crash();
    oracle.OnCrash();
    fx.Disarm();
    Status st2 = RecoverTimed(fx, &report->recovery_ms,
                              &report->replay_records);
    if (!st2.ok()) {
      AddViolation(report, "double-recover", budget, -1, false,
                   st2.ToString());
      finish();
      return false;
    }
    InDoubtResolution second = InDoubtResolution::kNone;
    Status vst2 = oracle.Verify(fx.engine.get(), &second, &detail);
    if (!vst2.ok()) {
      AddViolation(report, "double-recover", budget, -1, false,
                   detail.empty() ? vst2.ToString() : detail);
    } else if ((first == InDoubtResolution::kCommitted &&
                second == InDoubtResolution::kRolledBack) ||
               (first == InDoubtResolution::kRolledBack &&
                second == InDoubtResolution::kCommitted)) {
      AddViolation(
          report, "double-recover", budget, -1, false,
          StrFormat("in-doubt resolution flipped between recoveries "
                    "(%s then %s)",
                    first == InDoubtResolution::kCommitted ? "committed"
                                                           : "rolled back",
                    second == InDoubtResolution::kCommitted ? "committed"
                                                            : "rolled back"));
    }
  }
  finish();
  return false;
}

void CrashSweeper::SweepWriteCrashes(SweepReport* report) {
  for (int64_t b = 0;; ++b) {
    if (opts_.max_crash_points >= 0 && b >= opts_.max_crash_points) {
      report->completed = false;
      return;
    }
    if (CrashPoint(report, b, -1, false)) break;
    ++report->write_crash_points;

    if (opts_.nested_recovery_crashes) {
      for (int64_t n = 0;; ++n) {
        if (n > kNestedSweepCap) {
          AddViolation(report, "nested-sweep-diverged", b, n, false,
                       "recovery never completed under any write budget");
          break;
        }
        if (CrashPoint(report, b, n, false)) break;
        ++report->nested_write_crash_points;
      }
    }
    if (opts_.nested_recovery_read_crashes) {
      for (int64_t n = 0;; ++n) {
        if (n > kNestedSweepCap) {
          AddViolation(report, "nested-sweep-diverged", b, n, true,
                       "recovery never completed under any read budget");
          break;
        }
        if (CrashPoint(report, b, n, true)) break;
        ++report->nested_read_crash_points;
      }
    }
  }
  report->completed = true;
}

void CrashSweeper::SweepTransient(SweepReport* report, bool read_path) {
  // One self-healing fault per replay, swept over every disk and every
  // operation index on that disk.  The sweep of a disk ends when a whole
  // replay runs without the armed fault firing.
  size_t n_disks = 0;
  {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;  // already reported by the write sweep
    n_disks = fxr->disks.size();
  }
  for (size_t d = 0; d < n_disks; ++d) {
    for (int64_t k = 0;; ++k) {
      if (k > kNestedSweepCap) break;
      auto fxr = MakeFixture();
      if (!fxr.ok()) return;
      EngineFixture fx = std::move(*fxr);
      CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
      if (read_path) {
        fx.disks[d]->ArmTransientReadError(k);
      } else {
        fx.disks[d]->ArmTransientWriteError(k);
      }
      ReplayOutcome out = Replay(fx, oracle, /*transient=*/true);
      ++report->schedules;
      const store::FaultCounters fc = fx.TotalFaults();
      const bool fired =
          (read_path ? fc.transient_reads : fc.transient_writes) > 0;

      if (!out.error.ok()) {
        AddViolation(report, "workload", -1, -1, false,
                     StrFormat("transient %s fault on disk %zu op %lld: %s",
                               read_path ? "read" : "write", d,
                               static_cast<long long>(k),
                               out.error.ToString().c_str()));
        Absorb(fx, report);
        break;
      }
      if (!fired) {
        // The workload no longer reaches operation k on this disk.
        Absorb(fx, report);
        break;
      }
      ++report->transient_points;

      if (out.crashed) {
        // The fault hit Commit() (or an unabortable spot): fall back to
        // crash-recovery.  Nothing stays armed — the fault already healed
        // — so recovery must succeed with no operator intervention.
        oracle.OnCrash();
        fx.engine->Crash();
        Status st = RecoverTimed(fx, &report->recovery_ms,
                                 &report->replay_records);
        if (!st.ok()) {
          AddViolation(report, "transient-recover", -1, -1, false,
                       StrFormat("disk %zu op %lld: %s", d,
                                 static_cast<long long>(k),
                                 st.ToString().c_str()));
          Absorb(fx, report);
          continue;
        }
      }
      std::string detail;
      Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
      if (!vst.ok()) {
        AddViolation(report, "transient-post-state", -1, -1, false,
                     StrFormat("disk %zu op %lld: %s", d,
                               static_cast<long long>(k),
                               (detail.empty() ? vst.ToString() : detail)
                                   .c_str()));
      }
      Absorb(fx, report);
    }
  }
}

void CrashSweeper::RunBitFlips(SweepReport* report) {
  Rng flip_rng(opts_.seed ^ 0xb17f11b5ULL);
  for (int trial = 0; trial < opts_.bit_flip_trials; ++trial) {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;
    EngineFixture fx = std::move(*fxr);
    CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());

    // Record every (disk, block) the workload touches so the flip lands
    // somewhere meaningful.
    std::vector<std::pair<size_t, store::BlockId>> written;
    for (size_t d = 0; d < fx.disks.size(); ++d) {
      fx.disks[d]->SetWriteObserver(
          [d, &written](store::BlockId b, const PageData&) {
            written.emplace_back(d, b);
          });
    }
    ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
    ++report->schedules;
    if (!out.error.ok() || out.crashed || written.empty()) {
      Absorb(fx, report);
      continue;
    }

    const auto& [d, block] = written[static_cast<size_t>(flip_rng.UniformInt(
        0, static_cast<int64_t>(written.size()) - 1))];
    const size_t byte = static_cast<size_t>(flip_rng.UniformInt(
        0, static_cast<int64_t>(fx.disks[d]->block_size()) - 1));
    const uint8_t mask =
        static_cast<uint8_t>(1u << flip_rng.UniformInt(0, 7));

    fx.engine->Crash();
    oracle.OnCrash();
    (void)fx.disks[d]->FlipBit(block, byte, mask);

    ++report->bit_flips.trials;
    Status st = RecoverTimed(fx, &report->recovery_ms,
                             &report->replay_records);
    if (!st.ok()) {
      ++report->bit_flips.detected;  // recovery refused the corrupt store
      Absorb(fx, report);
      continue;
    }
    std::string detail;
    Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
    if (vst.ok()) {
      ++report->bit_flips.masked;
    } else if (vst.code() == StatusCode::kInternal) {
      ++report->bit_flips.silent;  // wrong data served without an error
    } else {
      ++report->bit_flips.detected;  // a read surfaced the corruption
    }
    Absorb(fx, report);
  }
}

void CrashSweeper::MediaRepairAndVerify(SweepReport* report, EngineFixture& fx,
                                        CommitOracle& oracle, int64_t index,
                                        size_t d, bool mid_recover) {
  const std::string where = mid_recover ? "media-recover-crash" : "media-crash";
  const int64_t crash_index = mid_recover ? -1 : index;
  const int64_t nested_index = mid_recover ? index : -1;
  Status rst = fx.RepairMedia();
  if (rst.IsDataLoss()) {
    // No redundancy covers this disk (mirroring/archive off): refusing
    // with kDataLoss is the required graceful failure, not a violation.
    ++report->media_data_loss;
    return;
  }
  if (!rst.ok()) {
    AddViolation(report, where + "-repair", crash_index, nested_index, false,
                 StrFormat("disk %zu: %s", d, rst.ToString().c_str()));
    return;
  }
  Status st = RecoverTimed(fx, &report->recovery_ms, &report->replay_records);
  if (!st.ok()) {
    AddViolation(report, where + "-recover", crash_index, nested_index, false,
                 StrFormat("disk %zu: %s", d, st.ToString().c_str()));
    return;
  }
  std::string detail;
  Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
  if (!vst.ok()) {
    AddViolation(report, where + "-post-state", crash_index, nested_index,
                 false,
                 StrFormat("disk %zu: %s", d,
                           (detail.empty() ? vst.ToString() : detail).c_str()));
  }
}

void CrashSweeper::SweepMedia(SweepReport* report) {
  report->media_swept = true;
  size_t n_disks = 0;
  {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;  // already reported by the write sweep
    n_disks = fxr->disks.size();
  }
  for (size_t d = 0; d < n_disks; ++d) {
    // The same power event that stops the machine takes disk d's medium:
    // sweep every workload write index, plus the at-rest loss after the
    // final write.
    for (int64_t w = 0;; ++w) {
      if (w > kNestedSweepCap) break;
      auto fxr = MakeFixture();
      if (!fxr.ok()) return;
      EngineFixture fx = std::move(*fxr);
      CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
      fx.ArmWrites(w);
      ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
      ++report->schedules;
      if (!out.error.ok()) {
        AddViolation(report, "workload", w, -1, false, out.error.ToString());
        Absorb(fx, report);
        return;
      }
      const bool done = !out.crashed;
      oracle.OnCrash();
      fx.engine->Crash();
      fx.Disarm();
      fx.disks[d]->FailMedia();
      ++report->media_crash_points;
      MediaRepairAndVerify(report, fx, oracle, w, d, /*mid_recover=*/false);
      Absorb(fx, report);
      if (done) break;
    }

    // Mid-Recover losses: replay the whole workload, crash, then cut
    // Recover() itself down at each of its write indices — the fault that
    // stops recovery also takes disk d's medium.  Ends when recovery
    // completes under the budget (immediately, for engines whose recovery
    // writes nothing).
    for (int64_t n = 0;; ++n) {
      if (n > kNestedSweepCap) {
        AddViolation(report, "media-sweep-diverged", -1, n, false,
                     "recovery never completed under any write budget");
        break;
      }
      auto fxr = MakeFixture();
      if (!fxr.ok()) return;
      EngineFixture fx = std::move(*fxr);
      CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
      ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
      ++report->schedules;
      if (!out.error.ok()) {
        AddViolation(report, "workload", -1, n, false, out.error.ToString());
        Absorb(fx, report);
        return;
      }
      oracle.OnCrash();
      fx.engine->Crash();
      fx.ArmWrites(n);
      Status st =
          RecoverTimed(fx, &report->recovery_ms, &report->replay_records);
      if (st.ok()) {
        // Recovery finished before its n-th write: this disk's mid-Recover
        // enumeration is exhausted.
        Absorb(fx, report);
        break;
      }
      fx.engine->Crash();
      fx.Disarm();
      fx.disks[d]->FailMedia();
      ++report->media_recover_crash_points;
      MediaRepairAndVerify(report, fx, oracle, n, d, /*mid_recover=*/true);
      Absorb(fx, report);
    }
  }
}

void CrashSweeper::RunScrub(SweepReport* report) {
  Rng rng(opts_.seed ^ 0x5c44bb1e5c44bb1eULL);
  for (int trial = 0; trial < opts_.scrub_trials; ++trial) {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;
    EngineFixture fx = std::move(*fxr);
    CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());

    // Record every (disk, block) the workload writes so the corruption
    // lands on real data with a checksum sidecar to betray it.
    std::vector<std::pair<size_t, store::BlockId>> written;
    for (size_t d = 0; d < fx.disks.size(); ++d) {
      fx.disks[d]->SetWriteObserver(
          [d, &written](store::BlockId b, const PageData&) {
            written.emplace_back(d, b);
          });
    }
    ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
    ++report->schedules;
    if (!out.error.ok() || out.crashed || written.empty()) {
      Absorb(fx, report);
      continue;
    }

    const auto& [d, block] = written[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(written.size()) - 1))];
    const size_t bs = fx.disks[d]->block_size();
    const size_t offset =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(bs) - 1));
    const size_t len = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(bs - offset)));
    (void)fx.disks[d]->CorruptRange(block, offset, len, rng.Next());
    ++report->scrub_injected;

    // Scrub every block of every disk: exactly the corrupted block must
    // fail its checksum — a miss is a silent corruption the store would
    // serve as truth, a false alarm would fail healthy media.
    bool caught = false;
    for (size_t dd = 0; dd < fx.disks.size(); ++dd) {
      for (store::BlockId b = 0; b < fx.disks[dd]->num_blocks(); ++b) {
        Status st = fx.disks[dd]->VerifyBlockChecksum(b);
        if (st.ok()) continue;
        if (dd == d && b == block) {
          caught = true;
        } else {
          AddViolation(report, "scrub-false-alarm", -1, -1, false,
                       StrFormat("disk %zu block %llu: %s", dd,
                                 static_cast<unsigned long long>(b),
                                 st.ToString().c_str()));
        }
      }
    }
    if (caught) {
      ++report->scrub_detected;
    } else {
      AddViolation(report, "scrub-miss", -1, -1, false,
                   StrFormat("silent corruption on disk %zu block %llu "
                             "(offset %zu, %zu bytes) not detected",
                             d, static_cast<unsigned long long>(block), offset,
                             len));
    }
    Absorb(fx, report);
  }
}

SweepReport CrashSweeper::Run(core::ThreadPool* pool) {
  if (opts_.sequential_replay || !forkable_) return RunSequential();
  if (pool != nullptr) return RunForked(pool);
  core::ThreadPool local(opts_.jobs);
  return RunForked(&local);
}

SweepReport CrashSweeper::RunSequential() {
  SweepReport report;
  report.engine = name_;
  report.seed = opts_.seed;
  SweepWriteCrashes(&report);
  if (opts_.transient_faults) {
    SweepTransient(&report, /*read_path=*/false);
    SweepTransient(&report, /*read_path=*/true);
  }
  if (opts_.bit_flip_trials > 0) RunBitFlips(&report);
  if (opts_.media_faults) {
    SweepMedia(&report);
    if (opts_.scrub_trials > 0) RunScrub(&report);
  }
  return report;
}

// --- Snapshot-forked path -------------------------------------------------
//
// One golden replay learns everything the sequential sweeper re-derives
// per trial: because engines are deterministic and the workload is a pure
// function of the seed, the durable state at crash budget b equals the
// golden disk image after b successful writes (plus the torn prefix of
// write b in torn mode), and a freshly constructed engine over forks of
// that image is indistinguishable from the crashed engine (Crash() wipes
// exactly the state a constructor starts without; no zoo engine touches
// the disk before Recover()).  So each trial forks the nearest stride
// checkpoint, rolls recorded writes forward, rebuilds the oracle from the
// recorded transitions, and runs only the recovery under test.

Result<EngineFixture> CrashSweeper::ForkTrialFixture(const GoldenTrace& trace,
                                                     int64_t budget) const {
  const size_t checkpoint = static_cast<size_t>(budget / trace.stride);
  DBMR_CHECK(checkpoint < trace.checkpoints.size());
  auto fxr =
      ForkEngineFixture(name_, trace.checkpoints[checkpoint], opts_.fixture);
  if (!fxr.ok()) return fxr;
  EngineFixture fx = std::move(*fxr);
  for (int64_t i = static_cast<int64_t>(checkpoint) * trace.stride;
       i < budget; ++i) {
    const GoldenTrace::WriteEvent& ev =
        trace.writes[static_cast<size_t>(i)];
    fx.disks[ev.disk]->RestoreBlock(ev.block, ev.data.data(),
                                    ev.data.size());
  }
  if (opts_.torn_writes && budget < static_cast<int64_t>(trace.writes.size())) {
    // The sequential replay tears the first failing write; reproduce the
    // same partial image of write `budget`.
    const GoldenTrace::WriteEvent& ev =
        trace.writes[static_cast<size_t>(budget)];
    const size_t block_size = fx.disks[ev.disk]->block_size();
    fx.disks[ev.disk]->RestoreBlock(
        ev.block, ev.data.data(),
        std::min(opts_.torn_prefix_bytes, block_size));
  }
  if (opts_.torn_writes) fx.SetTornWrites(true, opts_.torn_prefix_bytes);
  return fx;
}

CommitOracle CrashSweeper::ReconstructOracle(const GoldenTrace& trace,
                                             int64_t budget) const {
  // Number of oracle transitions completed before the crashing engine call
  // (budget == writes.size() means "after the whole replay": all of them).
  size_t n_ops = trace.ops.size();
  bool in_doubt = false;
  txn::TxnId victim = 0;
  if (budget < static_cast<int64_t>(trace.writes.size())) {
    const GoldenTrace::WriteEvent& ev =
        trace.writes[static_cast<size_t>(budget)];
    n_ops = ev.ops_logged;
    in_doubt = ev.op == GoldenTrace::Op::kCommit;
    victim = ev.txn;
  }
  // Start from the oracle image taken with the disk checkpoint this trial
  // forked; only the transitions since then need replaying.  The
  // checkpoint predates write `budget`, so its op count never exceeds
  // n_ops.
  const size_t checkpoint = static_cast<size_t>(budget / trace.stride);
  DBMR_CHECK(checkpoint < trace.oracle_checkpoints.size());
  CommitOracle oracle = trace.oracle_checkpoints[checkpoint];
  for (size_t i = trace.ops_at_checkpoint[checkpoint]; i < n_ops; ++i) {
    const GoldenTrace::OracleOp& op = trace.ops[i];
    switch (op.kind) {
      case GoldenTrace::OracleOp::Kind::kWrite:
        oracle.OnWrite(op.txn, op.page, op.data);
        break;
      case GoldenTrace::OracleOp::Kind::kCommitOk:
        oracle.OnCommitOk(op.txn);
        break;
      case GoldenTrace::OracleOp::Kind::kAbort:
        oracle.OnAbort(op.txn);
        break;
    }
  }
  if (in_doubt) oracle.OnCommitInDoubt(victim);
  oracle.OnCrash();
  return oracle;
}

CrashSweeper::TrialResult CrashSweeper::ForkedPlainTrial(
    const GoldenTrace& trace, int64_t budget) {
  TrialResult out;
  // The injected replay crash the fork skips: account for it so the fault
  // tallies match the sequential sweeper's.
  out.faults.write_failures += 1;
  if (opts_.torn_writes) out.faults.torn_writes += 1;

  auto fxr = ForkTrialFixture(trace, budget);
  if (!fxr.ok()) {
    out.violations.push_back(
        MakeViolation("fixture", budget, -1, false, fxr.status().ToString()));
    out.counted = false;
    return out;
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle = ReconstructOracle(trace, budget);

  auto finish = [&]() {
    out.disk_reads += fx.TotalReads();
    out.disk_writes += fx.TotalWrites();
    out.faults += fx.TotalFaults();
    const store::IoRetryStats rs = fx.engine->io_retry_stats();
    out.io_retries += rs.retries;
    out.io_giveups += rs.giveups;
  };

  Status st = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
  out.recovery_writes = static_cast<int64_t>(fx.TotalWrites());
  out.recovery_reads = static_cast<int64_t>(fx.TotalReads());
  if (!st.ok()) {
    out.violations.push_back(
        MakeViolation("recover", budget, -1, false, st.ToString()));
    finish();
    return out;
  }
  std::string detail;
  InDoubtResolution first = InDoubtResolution::kNone;
  Status vst = oracle.Verify(fx.engine.get(), &first, &detail);
  if (!vst.ok()) {
    out.violations.push_back(
        MakeViolation("post-crash-state", budget, -1, false,
                      detail.empty() ? vst.ToString() : detail));
    finish();
    return out;
  }

  if (opts_.double_recover) {
    fx.engine->Crash();
    oracle.OnCrash();
    fx.Disarm();
    Status st2 = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
    if (!st2.ok()) {
      out.violations.push_back(
          MakeViolation("double-recover", budget, -1, false, st2.ToString()));
      finish();
      return out;
    }
    InDoubtResolution second = InDoubtResolution::kNone;
    Status vst2 = oracle.Verify(fx.engine.get(), &second, &detail);
    if (!vst2.ok()) {
      out.violations.push_back(
          MakeViolation("double-recover", budget, -1, false,
                        detail.empty() ? vst2.ToString() : detail));
    } else if ((first == InDoubtResolution::kCommitted &&
                second == InDoubtResolution::kRolledBack) ||
               (first == InDoubtResolution::kRolledBack &&
                second == InDoubtResolution::kCommitted)) {
      out.violations.push_back(MakeViolation(
          "double-recover", budget, -1, false,
          StrFormat("in-doubt resolution flipped between recoveries "
                    "(%s then %s)",
                    first == InDoubtResolution::kCommitted ? "committed"
                                                           : "rolled back",
                    second == InDoubtResolution::kCommitted ? "committed"
                                                            : "rolled back")));
    }
  }
  finish();
  return out;
}

CrashSweeper::TrialResult CrashSweeper::ForkedNestedTrial(
    const GoldenTrace& trace, int64_t budget, int64_t nested_index,
    bool nested_reads) {
  TrialResult out;
  out.faults.write_failures += 1;  // the skipped replay crash
  if (opts_.torn_writes) out.faults.torn_writes += 1;

  auto fxr = ForkTrialFixture(trace, budget);
  if (!fxr.ok()) {
    out.violations.push_back(MakeViolation("fixture", budget, nested_index,
                                           nested_reads,
                                           fxr.status().ToString()));
    out.counted = false;
    return out;
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle = ReconstructOracle(trace, budget);

  auto finish = [&]() {
    out.disk_reads += fx.TotalReads();
    out.disk_writes += fx.TotalWrites();
    out.faults += fx.TotalFaults();
    const store::IoRetryStats rs = fx.engine->io_retry_stats();
    out.io_retries += rs.retries;
    out.io_giveups += rs.giveups;
  };

  if (nested_reads) {
    fx.ArmReads(nested_index);
  } else {
    fx.ArmWrites(nested_index);
  }
  Status st = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
  if (st.ok()) {
    if (fx.AnyCrashed()) {
      out.violations.push_back(
          MakeViolation("recover-swallowed-fault", budget, nested_index,
                        nested_reads,
                        "Recover() reported success although an injected "
                        "fault fired during it"));
    }
    // Recovery completed without reaching the nested fault: terminal.
    out.counted = false;
    finish();
    return out;
  }
  // Recovery itself crashed; a second recovery must succeed and restore a
  // correct state.
  fx.engine->Crash();
  fx.Disarm();
  Status st2 = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
  if (!st2.ok()) {
    out.violations.push_back(MakeViolation("nested-recover", budget,
                                           nested_index, nested_reads,
                                           st2.ToString()));
    finish();
    return out;
  }
  std::string detail;
  InDoubtResolution res = InDoubtResolution::kNone;
  Status vst = oracle.Verify(fx.engine.get(), &res, &detail);
  if (!vst.ok()) {
    out.violations.push_back(
        MakeViolation("nested-post-state", budget, nested_index, nested_reads,
                      detail.empty() ? vst.ToString() : detail));
  }
  finish();
  return out;
}

CrashSweeper::TrialResult CrashSweeper::ForkedTransientTrial(size_t disk,
                                                             int64_t op_index,
                                                             bool read_path) {
  // Transient trials diverge from the golden schedule after the fault
  // heals (retries, victim aborts), so they cannot be forked — each runs
  // the full replay, exactly like the sequential sweeper; only the
  // scheduling is parallel.
  TrialResult out;
  auto fxr = MakeFixture();
  if (!fxr.ok()) {
    out.counted = false;
    return out;
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
  if (read_path) {
    fx.disks[disk]->ArmTransientReadError(op_index);
  } else {
    fx.disks[disk]->ArmTransientWriteError(op_index);
  }
  ReplayOutcome rep = Replay(fx, oracle, /*transient=*/true);
  const store::FaultCounters fc = fx.TotalFaults();
  out.fired = (read_path ? fc.transient_reads : fc.transient_writes) > 0;

  auto finish = [&]() {
    out.disk_reads += fx.TotalReads();
    out.disk_writes += fx.TotalWrites();
    out.faults += fx.TotalFaults();
    const store::IoRetryStats rs = fx.engine->io_retry_stats();
    out.io_retries += rs.retries;
    out.io_giveups += rs.giveups;
  };

  if (!rep.error.ok()) {
    out.workload_error = true;
    out.violations.push_back(MakeViolation(
        "workload", -1, -1, false,
        StrFormat("transient %s fault on disk %zu op %lld: %s",
                  read_path ? "read" : "write", disk,
                  static_cast<long long>(op_index),
                  rep.error.ToString().c_str())));
    finish();
    return out;
  }
  if (!out.fired) {
    finish();
    return out;
  }

  if (rep.crashed) {
    oracle.OnCrash();
    fx.engine->Crash();
    Status st = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
    if (!st.ok()) {
      out.violations.push_back(MakeViolation(
          "transient-recover", -1, -1, false,
          StrFormat("disk %zu op %lld: %s", disk,
                    static_cast<long long>(op_index),
                    st.ToString().c_str())));
      finish();
      return out;
    }
  }
  std::string detail;
  Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
  if (!vst.ok()) {
    out.violations.push_back(MakeViolation(
        "transient-post-state", -1, -1, false,
        StrFormat("disk %zu op %lld: %s", disk,
                  static_cast<long long>(op_index),
                  (detail.empty() ? vst.ToString() : detail).c_str())));
  }
  finish();
  return out;
}

CrashSweeper::TrialResult CrashSweeper::ForkedBitFlipTrial(
    const GoldenTrace& trace, size_t disk, store::BlockId block, size_t byte,
    uint8_t mask) {
  TrialResult out;
  const int64_t end = static_cast<int64_t>(trace.writes.size());
  auto fxr = ForkTrialFixture(trace, end);  // the post-replay image
  if (!fxr.ok()) {
    out.counted = false;
    return out;
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle = ReconstructOracle(trace, end);
  (void)fx.disks[disk]->FlipBit(block, byte, mask);

  Status st = RecoverTimed(fx, &out.recovery_ms, &out.replay_records);
  if (!st.ok()) {
    out.flip_outcome = 0;  // detected: recovery refused the corrupt store
  } else {
    std::string detail;
    Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
    if (vst.ok()) {
      out.flip_outcome = 1;  // masked
    } else if (vst.code() == StatusCode::kInternal) {
      out.flip_outcome = 2;  // silent: wrong data served without an error
    } else {
      out.flip_outcome = 0;  // detected: a read surfaced the corruption
    }
  }
  out.disk_reads += fx.TotalReads();
  out.disk_writes += fx.TotalWrites();
  out.faults += fx.TotalFaults();
  const store::IoRetryStats rs = fx.engine->io_retry_stats();
  out.io_retries += rs.retries;
  out.io_giveups += rs.giveups;
  return out;
}

SweepReport CrashSweeper::RunForked(core::ThreadPool* pool) {
  SweepReport report;
  report.engine = name_;
  report.seed = opts_.seed;

  // --- Golden replay: run the workload once, record everything. ---------
  auto fxr = MakeFixture();
  if (!fxr.ok()) {
    // Mirror the sequential sweeper: the b=0 trial reports the fixture
    // failure and the write sweep terminates "naturally".
    AddViolation(&report, "fixture", 0, -1, false, fxr.status().ToString());
    report.completed = true;
    return report;
  }
  EngineFixture golden = std::move(*fxr);
  CommitOracle oracle(golden.engine->num_pages(),
                      golden.engine->payload_size());

  GoldenTrace trace;
  trace.stride = std::max(1, opts_.snapshot_stride);
  trace.num_pages = golden.engine->num_pages();
  trace.payload_size = golden.engine->payload_size();
  trace.checkpoints.push_back(golden.TakeSnapshot());
  trace.oracle_checkpoints.push_back(oracle);
  trace.ops_at_checkpoint.push_back(0);
  std::vector<uint64_t> base_writes, base_reads;
  for (const auto& d : golden.disks) {
    base_writes.push_back(d->writes());
    base_reads.push_back(d->reads());
  }
  for (size_t d = 0; d < golden.disks.size(); ++d) {
    golden.disks[d]->SetWriteObserver(
        [d, &trace, &golden, &oracle](store::BlockId b,
                                      const PageData& data) {
          trace.writes.push_back({d, b, data, trace.cur_op, trace.cur_txn,
                                  trace.ops.size()});
          if (static_cast<int64_t>(trace.writes.size()) % trace.stride == 0) {
            trace.checkpoints.push_back(golden.TakeSnapshot());
            trace.oracle_checkpoints.push_back(oracle);
            trace.ops_at_checkpoint.push_back(trace.ops.size());
          }
        });
  }
  ReplayOutcome gold = Replay(golden, oracle, /*transient=*/false, &trace);
  DBMR_CHECK(!gold.crashed);  // no faults are armed on the golden fixture
  ++report.schedules;
  for (const auto& d : golden.disks) d->SetWriteObserver(nullptr);
  trace.final_state = golden.TakeSnapshot();
  for (size_t d = 0; d < golden.disks.size(); ++d) {
    trace.replay_writes.push_back(golden.disks[d]->writes() - base_writes[d]);
    trace.replay_reads.push_back(golden.disks[d]->reads() - base_reads[d]);
  }
  trace.error = gold.error;
  Absorb(golden, &report);

  const int64_t total_writes = static_cast<int64_t>(trace.writes.size());
  const bool capped = opts_.max_crash_points >= 0 &&
                      opts_.max_crash_points <= total_writes;
  const int64_t num_plain = capped ? opts_.max_crash_points : total_writes;

  // --- Plain write-crash trials, in parallel. ---------------------------
  std::vector<TrialResult> plain(static_cast<size_t>(num_plain));
  pool->ParallelFor(plain.size(), [&](size_t i) {
    plain[i] = ForkedPlainTrial(trace, static_cast<int64_t>(i));
  });

  // --- Nested trials: bounds come from each plain trial's recovery. -----
  struct NestedKey {
    int64_t budget;
    int64_t nested;
    bool reads;
  };
  std::vector<NestedKey> nested_keys;
  for (int64_t b = 0; b < num_plain; ++b) {
    if (!plain[static_cast<size_t>(b)].counted) continue;
    if (opts_.nested_recovery_crashes) {
      const int64_t last = std::min(
          plain[static_cast<size_t>(b)].recovery_writes, kNestedSweepCap);
      for (int64_t n = 0; n <= last; ++n) {
        nested_keys.push_back({b, n, false});
      }
    }
    if (opts_.nested_recovery_read_crashes) {
      const int64_t last = std::min(
          plain[static_cast<size_t>(b)].recovery_reads, kNestedSweepCap);
      for (int64_t n = 0; n <= last; ++n) {
        nested_keys.push_back({b, n, true});
      }
    }
  }
  std::vector<TrialResult> nested(nested_keys.size());
  pool->ParallelFor(nested.size(), [&](size_t i) {
    nested[i] = ForkedNestedTrial(trace, nested_keys[i].budget,
                                  nested_keys[i].nested, nested_keys[i].reads);
  });

  // --- Merge in the sequential sweeper's order. -------------------------
  auto merge = [&report](TrialResult& t) {
    ++report.schedules;
    for (Violation& v : t.violations) {
      report.violations.push_back(std::move(v));
    }
    report.disk_reads += t.disk_reads;
    report.disk_writes += t.disk_writes;
    report.faults += t.faults;
    report.recovery_ms += t.recovery_ms;
    report.replay_records += t.replay_records;
    report.io_retries += t.io_retries;
    report.io_giveups += t.io_giveups;
  };

  size_t nk = 0;  // cursor into nested_keys / nested (grouped by budget)
  for (int64_t b = 0; b < num_plain; ++b) {
    TrialResult& t = plain[static_cast<size_t>(b)];
    const bool counted = t.counted;
    merge(t);
    if (counted) ++report.write_crash_points;
    while (nk < nested_keys.size() && nested_keys[nk].budget == b) {
      const bool dir = nested_keys[nk].reads;
      TrialResult& n = nested[nk];
      const bool n_counted = n.counted;
      merge(n);
      ++nk;
      if (n_counted) {
        if (dir) {
          ++report.nested_read_crash_points;
        } else {
          ++report.nested_write_crash_points;
        }
      } else {
        // Terminal trial: recovery completed (possibly by swallowing a
        // fault an engine tolerates, e.g. a best-effort read), so the
        // sequential sweeper would end this direction's enumeration here.
        // Later pre-spawned trials of the direction are discarded unseen.
        while (nk < nested_keys.size() && nested_keys[nk].budget == b &&
               nested_keys[nk].reads == dir) {
          ++nk;
        }
      }
    }
  }

  // --- Terminal point of the write sweep. -------------------------------
  if (capped) {
    report.completed = false;
  } else {
    // The sequential trial at budget == total_writes replays the whole
    // workload without crashing; the golden replay already was that run,
    // so only its verdict is emitted here.
    if (!trace.error.ok()) {
      AddViolation(&report, "workload", total_writes, -1, false,
                   trace.error.ToString());
    } else {
      std::string detail;
      Status vst = oracle.Verify(golden.engine.get(), nullptr, &detail);
      if (!vst.ok()) {
        AddViolation(&report, "final-state", total_writes, -1, false,
                     detail.empty() ? vst.ToString() : detail);
      }
    }
    report.completed = true;
  }

  // --- Transient faults: full replays, parallel scheduling. -------------
  if (opts_.transient_faults) {
    for (const bool read_path : {false, true}) {
      struct TransientKey {
        size_t disk;
        int64_t op;
      };
      std::vector<TransientKey> keys;
      std::vector<size_t> disk_begin;  // first key index per disk
      for (size_t d = 0; d < golden.disks.size(); ++d) {
        disk_begin.push_back(keys.size());
        const int64_t ops = static_cast<int64_t>(
            read_path ? trace.replay_reads[d] : trace.replay_writes[d]);
        // The fault at index k fires iff the golden replay reaches op k on
        // this disk (execution is identical up to the fault), so k = ops
        // is the first trial where it cannot fire — the terminal one.
        for (int64_t k = 0; k <= std::min(ops, kNestedSweepCap); ++k) {
          keys.push_back({d, k});
        }
      }
      disk_begin.push_back(keys.size());
      std::vector<TrialResult> trials(keys.size());
      pool->ParallelFor(trials.size(), [&](size_t i) {
        trials[i] = ForkedTransientTrial(keys[i].disk, keys[i].op, read_path);
      });
      for (size_t d = 0; d < golden.disks.size(); ++d) {
        for (size_t i = disk_begin[d]; i < disk_begin[d + 1]; ++i) {
          TrialResult& t = trials[i];
          ++report.schedules;
          const bool stop = t.workload_error || !t.fired;
          if (t.fired && !t.workload_error) ++report.transient_points;
          for (Violation& v : t.violations) {
            report.violations.push_back(std::move(v));
          }
          report.disk_reads += t.disk_reads;
          report.disk_writes += t.disk_writes;
          report.faults += t.faults;
          report.recovery_ms += t.recovery_ms;
          report.replay_records += t.replay_records;
          report.io_retries += t.io_retries;
          report.io_giveups += t.io_giveups;
          if (stop) break;  // the sequential sweep ends this disk here
        }
      }
    }
  }

  // --- Bit flips: fork the final image, draws fixed in trial order. -----
  if (opts_.bit_flip_trials > 0) {
    if (!trace.error.ok() || trace.writes.empty()) {
      // The sequential sweeper still replays once per trial and skips;
      // count the schedules so the tallies stay comparable.
      report.schedules += opts_.bit_flip_trials;
    } else {
      Rng flip_rng(opts_.seed ^ 0xb17f11b5ULL);
      struct FlipKey {
        size_t disk;
        store::BlockId block;
        size_t byte;
        uint8_t mask;
      };
      std::vector<FlipKey> keys;
      for (int trial = 0; trial < opts_.bit_flip_trials; ++trial) {
        const GoldenTrace::WriteEvent& ev =
            trace.writes[static_cast<size_t>(flip_rng.UniformInt(
                0, static_cast<int64_t>(trace.writes.size()) - 1))];
        const size_t byte = static_cast<size_t>(flip_rng.UniformInt(
            0,
            static_cast<int64_t>(golden.disks[ev.disk]->block_size()) - 1));
        const uint8_t mask =
            static_cast<uint8_t>(1u << flip_rng.UniformInt(0, 7));
        keys.push_back({ev.disk, ev.block, byte, mask});
      }
      std::vector<TrialResult> trials(keys.size());
      pool->ParallelFor(trials.size(), [&](size_t i) {
        trials[i] = ForkedBitFlipTrial(trace, keys[i].disk, keys[i].block,
                                       keys[i].byte, keys[i].mask);
      });
      for (TrialResult& t : trials) {
        ++report.schedules;
        ++report.bit_flips.trials;
        if (t.flip_outcome == 0) ++report.bit_flips.detected;
        if (t.flip_outcome == 1) ++report.bit_flips.masked;
        if (t.flip_outcome == 2) ++report.bit_flips.silent;
        report.disk_reads += t.disk_reads;
        report.disk_writes += t.disk_writes;
        report.faults += t.faults;
        report.recovery_ms += t.recovery_ms;
        report.replay_records += t.replay_records;
        report.io_retries += t.io_retries;
        report.io_giveups += t.io_giveups;
      }
    }
  }

  // --- Media losses + checksum scrub. -----------------------------------
  // Deliberately the sequential implementation: the trials are cheap full
  // replays and running them in-order keeps the report byte-identical at
  // any job count by construction.
  if (opts_.media_faults) {
    SweepMedia(&report);
    if (opts_.scrub_trials > 0) RunScrub(&report);
  }
  return report;
}

SweepReport CrashSweeper::RunOne(int64_t crash_index, int64_t nested_index,
                                 bool nested_reads) {
  SweepReport report;
  report.engine = name_;
  report.seed = opts_.seed;
  report.completed = true;
  if (!CrashPoint(&report, crash_index, nested_index, nested_reads)) {
    if (nested_index < 0) {
      ++report.write_crash_points;
    } else if (nested_reads) {
      ++report.nested_read_crash_points;
    } else {
      ++report.nested_write_crash_points;
    }
  }
  return report;
}

}  // namespace dbmr::chaos
