#include "chaos/crash_sweeper.h"

#include <utility>

#include "util/rng.h"
#include "util/str.h"

namespace dbmr::chaos {

namespace {

/// Backstop for the nested sweeps: recovery of these fixtures performs at
/// most a few hundred I/Os, so a nested index this large means recovery
/// never manages to complete and the sweep would not terminate.
constexpr int64_t kNestedSweepCap = 100000;

PageData RandomPayload(Rng& rng, size_t n) {
  PageData p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(rng.Next());
  return p;
}

}  // namespace

JsonValue Violation::ToJson() const {
  JsonValue v = JsonValue::Object();
  v["engine"] = engine;
  v["kind"] = kind;
  v["seed"] = seed;
  v["crash_index"] = crash_index;
  v["nested_index"] = nested_index;
  v["detail"] = detail;
  v["repro"] = repro;
  return v;
}

JsonValue SweepReport::ToJson() const {
  JsonValue v = JsonValue::Object();
  v["engine"] = engine;
  v["seed"] = seed;
  v["completed"] = completed;
  v["schedules"] = schedules;
  v["write_crash_points"] = write_crash_points;
  v["nested_write_crash_points"] = nested_write_crash_points;
  v["nested_read_crash_points"] = nested_read_crash_points;
  v["transient_points"] = transient_points;
  JsonValue flips = JsonValue::Object();
  flips["trials"] = bit_flips.trials;
  flips["detected"] = bit_flips.detected;
  flips["masked"] = bit_flips.masked;
  flips["silent"] = bit_flips.silent;
  v["bit_flips"] = std::move(flips);
  v["disk_reads"] = disk_reads;
  v["disk_writes"] = disk_writes;
  JsonValue f = JsonValue::Object();
  f["write_failures"] = faults.write_failures;
  f["read_failures"] = faults.read_failures;
  f["transient_writes"] = faults.transient_writes;
  f["transient_reads"] = faults.transient_reads;
  f["torn_writes"] = faults.torn_writes;
  f["bit_flips"] = faults.bit_flips;
  v["faults_injected"] = std::move(f);
  JsonValue viols = JsonValue::Array();
  for (const Violation& viol : violations) viols.Append(viol.ToJson());
  v["violations"] = std::move(viols);
  return v;
}

CrashSweeper::CrashSweeper(std::string engine_name, SweepOptions options)
    : name_(std::move(engine_name)), opts_(options) {
  factory_ = [this]() { return MakeEngineFixture(name_, opts_.fixture); };
}

CrashSweeper::CrashSweeper(std::string engine_name, FixtureFactory factory,
                           SweepOptions options)
    : name_(std::move(engine_name)),
      factory_(std::move(factory)),
      opts_(options) {}

void CrashSweeper::AddViolation(SweepReport* report, const std::string& kind,
                                int64_t crash_index, int64_t nested_index,
                                bool nested_reads,
                                const std::string& detail) const {
  Violation v;
  v.engine = name_;
  v.kind = kind;
  v.seed = opts_.seed;
  v.crash_index = crash_index;
  v.nested_index = nested_index;
  v.detail = detail;
  std::string repro = StrFormat(
      "dbmr_torture --engine=%s --seed=%llu --txns=%d", name_.c_str(),
      static_cast<unsigned long long>(opts_.seed), opts_.txns);
  if (crash_index >= 0) {
    repro += StrFormat(" --crash-index=%lld",
                       static_cast<long long>(crash_index));
  }
  if (nested_index >= 0) {
    repro += StrFormat(" --nested-index=%lld",
                       static_cast<long long>(nested_index));
    if (nested_reads) repro += " --nested-reads";
  }
  if (opts_.torn_writes) repro += " --torn";
  v.repro = std::move(repro);
  report->violations.push_back(std::move(v));
}

void CrashSweeper::Absorb(const EngineFixture& fx,
                          SweepReport* report) const {
  report->disk_reads += fx.TotalReads();
  report->disk_writes += fx.TotalWrites();
  report->faults += fx.TotalFaults();
}

CrashSweeper::ReplayOutcome CrashSweeper::Replay(EngineFixture& fx,
                                                 CommitOracle& oracle,
                                                 bool transient) {
  ReplayOutcome out;
  Rng rng(opts_.seed);
  store::PageEngine* e = fx.engine.get();
  const uint64_t pages = e->num_pages();
  const size_t payload = e->payload_size();

  // In transient mode the single armed fault heals itself, so a retry of
  // the failed operation (or an abort of the victim transaction) must keep
  // the workload running with no crash-recovery needed.  In fail-stop mode
  // the first kIoError is the injected crash point: stop right there.
  for (int i = 0; i < opts_.txns; ++i) {
    auto t = e->Begin();
    if (!t.ok() && t.status().IsIoError() && transient) t = e->Begin();
    if (!t.ok()) {
      if (t.status().IsIoError()) {
        out.crashed = true;
      } else {
        out.error = t.status();
      }
      return out;
    }

    if (opts_.reads_in_workload) {
      const txn::PageId page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      PageData got;
      Status st = e->Read(*t, page, &got);
      if (!st.ok() && st.IsIoError() && transient) st = e->Read(*t, page, &got);
      if (!st.ok()) {
        if (st.IsIoError()) {
          out.crashed = true;
          out.txn_in_flight = true;
          out.victim = *t;
        } else {
          out.error = st;
        }
        return out;
      }
      if (got != oracle.Expected(page)) {
        out.error = Status::Internal(StrFormat(
            "workload read of page %llu diverges from the committed state",
            static_cast<unsigned long long>(page)));
        return out;
      }
    }

    const int n_writes =
        static_cast<int>(rng.UniformInt(1, opts_.max_writes_per_txn));
    bool txn_gone = false;
    for (int w = 0; w < n_writes; ++w) {
      const txn::PageId page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      const PageData data = RandomPayload(rng, payload);
      Status st = e->Write(*t, page, data);
      if (st.ok()) {
        oracle.OnWrite(*t, page, data);
        continue;
      }
      if (!st.IsIoError()) {
        out.error = st;
        return out;
      }
      if (!transient) {
        out.crashed = true;
        out.txn_in_flight = true;
        out.victim = *t;
        return out;
      }
      // Transient write fault: the disk healed, but the engine may have
      // torn down internal state for the failed write, so the safe
      // self-healing response is to abort the victim and move on.
      Status ab = e->Abort(*t);
      if (!ab.ok() && ab.IsIoError()) ab = e->Abort(*t);
      if (ab.ok() || ab.code() == StatusCode::kFailedPrecondition) {
        oracle.OnAbort(*t);
        txn_gone = true;
        break;
      }
      out.crashed = true;
      out.txn_in_flight = true;
      out.victim = *t;
      return out;
    }
    // Keep the rng stream aligned across replays regardless of faults:
    // the commit/abort coin is always tossed.
    const bool abort = rng.Bernoulli(opts_.abort_prob);
    if (txn_gone) continue;

    Status st = abort ? e->Abort(*t) : e->Commit(*t);
    if (st.ok()) {
      if (abort) {
        oracle.OnAbort(*t);
      } else {
        oracle.OnCommitOk(*t);
      }
      continue;
    }
    if (!st.IsIoError()) {
      out.error = st;
      return out;
    }
    if (abort) {
      // The abort was cut down; the transaction dies with the crash and
      // its writes must not surface — same contract either way.  In
      // transient mode retry once (the fault healed).
      if (transient) {
        Status ab = e->Abort(*t);
        if (ab.ok() || ab.code() == StatusCode::kFailedPrecondition) {
          oracle.OnAbort(*t);
          continue;
        }
      }
      out.crashed = true;
      out.txn_in_flight = true;
      out.victim = *t;
      return out;
    }
    // Commit was cut down: the transaction is in doubt.  Even a transient
    // fault forces crash-recovery here — the engine cannot tell how much
    // of the commit reached stable storage.
    oracle.OnCommitInDoubt(*t);
    out.crashed = true;
    out.in_doubt = true;
    out.victim = *t;
    return out;
  }
  return out;
}

bool CrashSweeper::CrashPoint(SweepReport* report, int64_t budget,
                              int64_t nested_index, bool nested_reads) {
  auto fxr = MakeFixture();
  if (!fxr.ok()) {
    AddViolation(report, "fixture", budget, nested_index, nested_reads,
                 fxr.status().ToString());
    return true;  // nothing more to sweep
  }
  EngineFixture fx = std::move(*fxr);
  CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
  if (opts_.torn_writes) fx.SetTornWrites(true, opts_.torn_prefix_bytes);

  fx.ArmWrites(budget);
  ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
  ++report->schedules;

  auto finish = [&]() { Absorb(fx, report); };

  if (!out.error.ok()) {
    AddViolation(report, "workload", budget, nested_index, nested_reads,
                 out.error.ToString());
    finish();
    return true;
  }

  if (!out.crashed) {
    // The whole workload fit under the budget: verify the final state and
    // signal natural termination of the write-crash sweep.
    fx.Disarm();
    std::string detail;
    Status st = oracle.Verify(fx.engine.get(), nullptr, &detail);
    if (!st.ok()) {
      AddViolation(report, "final-state", budget, nested_index, nested_reads,
                   detail.empty() ? st.ToString() : detail);
    }
    finish();
    return true;
  }

  // The injected crash point fired: lose volatile state.
  oracle.OnCrash();
  fx.engine->Crash();

  if (nested_index >= 0) {
    // Cut Recover() itself down after `nested_index` writes (or reads).
    fx.Disarm();
    if (nested_reads) {
      fx.ArmReads(nested_index);
    } else {
      fx.ArmWrites(nested_index);
    }
    Status st = fx.engine->Recover();
    if (st.ok()) {
      if (fx.AnyCrashed()) {
        AddViolation(report, "recover-swallowed-fault", budget, nested_index,
                     nested_reads,
                     "Recover() reported success although an injected fault "
                     "fired during it");
        finish();
        return true;
      }
      // Recovery completed without reaching the nested fault: this outer
      // crash point's nested sweep is exhausted.
      finish();
      return true;
    }
    // Recovery itself crashed; a second recovery must succeed and restore
    // a correct state.
    fx.engine->Crash();
    fx.Disarm();
    Status st2 = fx.engine->Recover();
    if (!st2.ok()) {
      AddViolation(report, "nested-recover", budget, nested_index,
                   nested_reads, st2.ToString());
      finish();
      return false;
    }
    std::string detail;
    InDoubtResolution res = InDoubtResolution::kNone;
    Status vst = oracle.Verify(fx.engine.get(), &res, &detail);
    if (!vst.ok()) {
      AddViolation(report, "nested-post-state", budget, nested_index,
                   nested_reads, detail.empty() ? vst.ToString() : detail);
    }
    finish();
    return false;
  }

  // Plain crash point: recover once and verify.
  fx.Disarm();
  Status st = fx.engine->Recover();
  if (!st.ok()) {
    AddViolation(report, "recover", budget, -1, false, st.ToString());
    finish();
    return false;
  }
  std::string detail;
  InDoubtResolution first = InDoubtResolution::kNone;
  Status vst = oracle.Verify(fx.engine.get(), &first, &detail);
  if (!vst.ok()) {
    AddViolation(report, "post-crash-state", budget, -1, false,
                 detail.empty() ? vst.ToString() : detail);
    finish();
    return false;
  }

  if (opts_.double_recover) {
    // Idempotence: crashing again right after recovery and recovering a
    // second time must succeed and must not flip the fate of an in-doubt
    // transaction (kCommitted <-> kRolledBack).
    fx.engine->Crash();
    oracle.OnCrash();
    fx.Disarm();
    Status st2 = fx.engine->Recover();
    if (!st2.ok()) {
      AddViolation(report, "double-recover", budget, -1, false,
                   st2.ToString());
      finish();
      return false;
    }
    InDoubtResolution second = InDoubtResolution::kNone;
    Status vst2 = oracle.Verify(fx.engine.get(), &second, &detail);
    if (!vst2.ok()) {
      AddViolation(report, "double-recover", budget, -1, false,
                   detail.empty() ? vst2.ToString() : detail);
    } else if ((first == InDoubtResolution::kCommitted &&
                second == InDoubtResolution::kRolledBack) ||
               (first == InDoubtResolution::kRolledBack &&
                second == InDoubtResolution::kCommitted)) {
      AddViolation(
          report, "double-recover", budget, -1, false,
          StrFormat("in-doubt resolution flipped between recoveries "
                    "(%s then %s)",
                    first == InDoubtResolution::kCommitted ? "committed"
                                                           : "rolled back",
                    second == InDoubtResolution::kCommitted ? "committed"
                                                            : "rolled back"));
    }
  }
  finish();
  return false;
}

void CrashSweeper::SweepWriteCrashes(SweepReport* report) {
  for (int64_t b = 0;; ++b) {
    if (opts_.max_crash_points >= 0 && b >= opts_.max_crash_points) {
      report->completed = false;
      return;
    }
    if (CrashPoint(report, b, -1, false)) break;
    ++report->write_crash_points;

    if (opts_.nested_recovery_crashes) {
      for (int64_t n = 0;; ++n) {
        if (n > kNestedSweepCap) {
          AddViolation(report, "nested-sweep-diverged", b, n, false,
                       "recovery never completed under any write budget");
          break;
        }
        if (CrashPoint(report, b, n, false)) break;
        ++report->nested_write_crash_points;
      }
    }
    if (opts_.nested_recovery_read_crashes) {
      for (int64_t n = 0;; ++n) {
        if (n > kNestedSweepCap) {
          AddViolation(report, "nested-sweep-diverged", b, n, true,
                       "recovery never completed under any read budget");
          break;
        }
        if (CrashPoint(report, b, n, true)) break;
        ++report->nested_read_crash_points;
      }
    }
  }
  report->completed = true;
}

void CrashSweeper::SweepTransient(SweepReport* report, bool read_path) {
  // One self-healing fault per replay, swept over every disk and every
  // operation index on that disk.  The sweep of a disk ends when a whole
  // replay runs without the armed fault firing.
  size_t n_disks = 0;
  {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;  // already reported by the write sweep
    n_disks = fxr->disks.size();
  }
  for (size_t d = 0; d < n_disks; ++d) {
    for (int64_t k = 0;; ++k) {
      if (k > kNestedSweepCap) break;
      auto fxr = MakeFixture();
      if (!fxr.ok()) return;
      EngineFixture fx = std::move(*fxr);
      CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());
      if (read_path) {
        fx.disks[d]->ArmTransientReadError(k);
      } else {
        fx.disks[d]->ArmTransientWriteError(k);
      }
      ReplayOutcome out = Replay(fx, oracle, /*transient=*/true);
      ++report->schedules;
      const store::FaultCounters fc = fx.TotalFaults();
      const bool fired =
          (read_path ? fc.transient_reads : fc.transient_writes) > 0;

      if (!out.error.ok()) {
        AddViolation(report, "workload", -1, -1, false,
                     StrFormat("transient %s fault on disk %zu op %lld: %s",
                               read_path ? "read" : "write", d,
                               static_cast<long long>(k),
                               out.error.ToString().c_str()));
        Absorb(fx, report);
        break;
      }
      if (!fired) {
        // The workload no longer reaches operation k on this disk.
        Absorb(fx, report);
        break;
      }
      ++report->transient_points;

      if (out.crashed) {
        // The fault hit Commit() (or an unabortable spot): fall back to
        // crash-recovery.  Nothing stays armed — the fault already healed
        // — so recovery must succeed with no operator intervention.
        oracle.OnCrash();
        fx.engine->Crash();
        Status st = fx.engine->Recover();
        if (!st.ok()) {
          AddViolation(report, "transient-recover", -1, -1, false,
                       StrFormat("disk %zu op %lld: %s", d,
                                 static_cast<long long>(k),
                                 st.ToString().c_str()));
          Absorb(fx, report);
          continue;
        }
      }
      std::string detail;
      Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
      if (!vst.ok()) {
        AddViolation(report, "transient-post-state", -1, -1, false,
                     StrFormat("disk %zu op %lld: %s", d,
                               static_cast<long long>(k),
                               (detail.empty() ? vst.ToString() : detail)
                                   .c_str()));
      }
      Absorb(fx, report);
    }
  }
}

void CrashSweeper::RunBitFlips(SweepReport* report) {
  Rng flip_rng(opts_.seed ^ 0xb17f11b5ULL);
  for (int trial = 0; trial < opts_.bit_flip_trials; ++trial) {
    auto fxr = MakeFixture();
    if (!fxr.ok()) return;
    EngineFixture fx = std::move(*fxr);
    CommitOracle oracle(fx.engine->num_pages(), fx.engine->payload_size());

    // Record every (disk, block) the workload touches so the flip lands
    // somewhere meaningful.
    std::vector<std::pair<size_t, store::BlockId>> written;
    for (size_t d = 0; d < fx.disks.size(); ++d) {
      fx.disks[d]->SetWriteObserver(
          [d, &written](store::BlockId b, const PageData&) {
            written.emplace_back(d, b);
          });
    }
    ReplayOutcome out = Replay(fx, oracle, /*transient=*/false);
    ++report->schedules;
    if (!out.error.ok() || out.crashed || written.empty()) {
      Absorb(fx, report);
      continue;
    }

    const auto& [d, block] = written[static_cast<size_t>(flip_rng.UniformInt(
        0, static_cast<int64_t>(written.size()) - 1))];
    const size_t byte = static_cast<size_t>(flip_rng.UniformInt(
        0, static_cast<int64_t>(fx.disks[d]->block_size()) - 1));
    const uint8_t mask =
        static_cast<uint8_t>(1u << flip_rng.UniformInt(0, 7));

    fx.engine->Crash();
    oracle.OnCrash();
    (void)fx.disks[d]->FlipBit(block, byte, mask);

    ++report->bit_flips.trials;
    Status st = fx.engine->Recover();
    if (!st.ok()) {
      ++report->bit_flips.detected;  // recovery refused the corrupt store
      Absorb(fx, report);
      continue;
    }
    std::string detail;
    Status vst = oracle.Verify(fx.engine.get(), nullptr, &detail);
    if (vst.ok()) {
      ++report->bit_flips.masked;
    } else if (vst.code() == StatusCode::kInternal) {
      ++report->bit_flips.silent;  // wrong data served without an error
    } else {
      ++report->bit_flips.detected;  // a read surfaced the corruption
    }
    Absorb(fx, report);
  }
}

SweepReport CrashSweeper::Run() {
  SweepReport report;
  report.engine = name_;
  report.seed = opts_.seed;
  SweepWriteCrashes(&report);
  if (opts_.transient_faults) {
    SweepTransient(&report, /*read_path=*/false);
    SweepTransient(&report, /*read_path=*/true);
  }
  if (opts_.bit_flip_trials > 0) RunBitFlips(&report);
  return report;
}

SweepReport CrashSweeper::RunOne(int64_t crash_index, int64_t nested_index,
                                 bool nested_reads) {
  SweepReport report;
  report.engine = name_;
  report.seed = opts_.seed;
  report.completed = true;
  if (!CrashPoint(&report, crash_index, nested_index, nested_reads)) {
    if (nested_index < 0) {
      ++report.write_crash_points;
    } else if (nested_reads) {
      ++report.nested_read_crash_points;
    } else {
      ++report.nested_write_crash_points;
    }
  }
  return report;
}

}  // namespace dbmr::chaos
