#include "chaos/engine_zoo.h"

#include <utility>

#include "core/arch_registry.h"
#include "store/recovery/aries_engine.h"
#include "store/recovery/differential_page_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "util/str.h"

namespace dbmr::chaos {

namespace {

constexpr int64_t kUnlimited = int64_t{1} << 40;

/// When `snap` is null, creates a fresh zero-filled disk; otherwise forks
/// the next snapshot image in disk order (geometry must match — a snapshot
/// only fits fixtures built with the same name and options).
store::VirtualDisk* AddDisk(EngineFixture* fx, const FixtureSnapshot* snap,
                            const std::string& name, uint64_t blocks,
                            size_t block_size) {
  if (snap != nullptr) {
    const size_t i = fx->disks.size();
    DBMR_CHECK(i < snap->disks.size());
    const store::DiskSnapshot& image = snap->disks[i];
    DBMR_CHECK(image.num_blocks() == blocks);
    DBMR_CHECK(image.block_size() == block_size);
    fx->disks.push_back(store::VirtualDisk::ForkFrom(image));
  } else {
    fx->disks.push_back(
        std::make_unique<store::VirtualDisk>(name, blocks, block_size));
  }
  store::VirtualDisk* d = fx->disks.back().get();
  d->SetSharedFailCounter(fx->write_budget);
  d->SetSharedReadFailCounter(fx->read_budget);
  return d;
}

/// Adds one engine-visible disk that is either a plain disk or (when
/// `mirrored`) a MirroredDisk view over a replica pair.  Both replicas are
/// real fixture disks — they snapshot, fork, and take faults like any
/// other — and the engine only ever sees the view.
store::VirtualDisk* AddMirrored(EngineFixture* fx, const FixtureSnapshot* snap,
                                bool mirrored, const std::string& name,
                                uint64_t blocks, size_t block_size) {
  store::VirtualDisk* primary = AddDisk(fx, snap, name, blocks, block_size);
  if (!mirrored) return primary;
  store::VirtualDisk* twin =
      AddDisk(fx, snap, name + "-mirror", blocks, block_size);
  fx->mirrors.push_back(
      std::make_unique<store::MirroredDisk>(name + "-rm", primary, twin));
  return fx->mirrors.back().get();
}

}  // namespace

void EngineFixture::Disarm() {
  *write_budget = kUnlimited;
  *read_budget = kUnlimited;
  for (auto& d : disks) d->ClearCrashState();
}

void EngineFixture::SetTornWrites(bool enabled, size_t prefix_bytes) {
  for (auto& d : disks) d->SetTornWriteMode(enabled, prefix_bytes);
}

bool EngineFixture::AnyCrashed() const {
  for (const auto& d : disks) {
    if (d->crashed()) return true;
  }
  return false;
}

bool EngineFixture::AnyMediaLost() const {
  for (const auto& d : disks) {
    if (d->media_lost()) return true;
  }
  return false;
}

Status EngineFixture::RepairMedia() {
  for (auto& m : mirrors) {
    DBMR_RETURN_IF_ERROR(m->Rebuild());
  }
  // Mirror pairs are whole again; anything still lost is unmirrored and
  // needs the engine's own redundancy (wal's archive) — or has none.
  if (AnyMediaLost()) return engine->MediaRecover();
  return Status::OK();
}

uint64_t EngineFixture::TotalReads() const {
  uint64_t n = 0;
  for (const auto& d : disks) n += d->reads();
  return n;
}

uint64_t EngineFixture::TotalWrites() const {
  uint64_t n = 0;
  for (const auto& d : disks) n += d->writes();
  return n;
}

store::FaultCounters EngineFixture::TotalFaults() const {
  store::FaultCounters f;
  for (const auto& d : disks) f += d->fault_counters();
  return f;
}

FixtureSnapshot EngineFixture::TakeSnapshot() const {
  FixtureSnapshot snap;
  snap.disks.reserve(disks.size());
  for (const auto& d : disks) snap.disks.push_back(d->Snapshot());
  return snap;
}

const std::vector<std::string>& EngineNames() {
  // Enumerated from the registry: engine_order fixes the zoo order, so
  // sweep reports keep their historical engine sequence byte for byte.
  static const std::vector<std::string> kNames =
      core::ArchRegistry::Global().EngineVariantNames();
  return kNames;
}

bool IsEngineName(const std::string& name) {
  for (const std::string& n : EngineNames()) {
    if (n == name) return true;
  }
  return false;
}

namespace {

/// Shared prologue/epilogue for the per-family builders registered below:
/// a fresh fixture shell with unlimited fault budgets, and the finishing
/// step that formats fresh disks (snap == nullptr) or checks that a forked
/// fixture consumed the whole snapshot (no Format — the engine starts cold
/// on the imaged durable state).
EngineFixture NewFixtureShell() {
  EngineFixture fx;
  fx.write_budget = std::make_shared<int64_t>(kUnlimited);
  fx.read_budget = std::make_shared<int64_t>(kUnlimited);
  return fx;
}

Result<EngineFixture> FinishFixture(EngineFixture fx,
                                    const FixtureSnapshot* snap) {
  if (snap == nullptr) {
    Status st = fx.engine->Format();
    if (!st.ok()) return st;
  } else {
    DBMR_CHECK(fx.disks.size() == snap->disks.size());
  }
  return fx;
}

Result<EngineFixture> BuildWal(const std::string& /*name*/,
                               const FixtureOptions& o,
                               const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::VirtualDisk* data =
      AddDisk(&fx, snap, "data", o.num_pages, o.block_size);
  std::vector<store::VirtualDisk*> logs;
  for (size_t i = 0; i < o.wal_logs; ++i) {
    logs.push_back(AddMirrored(&fx, snap, o.log_mirroring,
                               StrFormat("log%zu", i), 1024, o.block_size));
  }
  store::VirtualDisk* archive =
      o.archive ? AddDisk(&fx, snap, "archive", 1 + o.num_pages, o.block_size)
                : nullptr;
  store::WalEngineOptions wo;
  wo.pool_frames = o.wal_pool_frames;
  wo.recovery_jobs = o.recovery_jobs;
  fx.engine = std::make_unique<store::WalEngine>(data, logs, wo, archive);
  return FinishFixture(std::move(fx), snap);
}

Result<EngineFixture> BuildShadow(const std::string& /*name*/,
                                  const FixtureOptions& o,
                                  const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::VirtualDisk* d = AddMirrored(&fx, snap, o.log_mirroring, "d",
                                      o.num_pages * 3 + 8, o.block_size);
  store::ShadowEngineOptions so;
  so.recovery_jobs = o.recovery_jobs;
  fx.engine = std::make_unique<store::ShadowEngine>(d, o.num_pages, so);
  return FinishFixture(std::move(fx), snap);
}

Result<EngineFixture> BuildDifferential(const std::string& /*name*/,
                                        const FixtureOptions& o,
                                        const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::DifferentialEngineOptions dopts;
  dopts.a_blocks = 96;
  dopts.d_blocks = 8;
  dopts.base_blocks = 8;
  dopts.recovery_jobs = o.recovery_jobs;
  store::VirtualDisk* d = AddMirrored(
      &fx, snap, o.log_mirroring, "d",
      1 + dopts.a_blocks + dopts.d_blocks + 2 * dopts.base_blocks,
      o.block_size);
  fx.engine = std::make_unique<store::DifferentialPageEngine>(
      d, o.num_pages, /*payload_bytes=*/32, dopts);
  return FinishFixture(std::move(fx), snap);
}

Result<EngineFixture> BuildOverwrite(const std::string& name,
                                     const FixtureOptions& o,
                                     const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::OverwriteEngineOptions oo;
  oo.mode = name == "overwrite-noundo" ? store::OverwriteMode::kNoUndo
                                       : store::OverwriteMode::kNoRedo;
  oo.list_blocks = 48;
  oo.scratch_blocks = 48;
  oo.recovery_jobs = o.recovery_jobs;
  store::VirtualDisk* d = AddMirrored(&fx, snap, o.log_mirroring, "d",
                                      o.num_pages + 97, o.block_size);
  fx.engine = std::make_unique<store::OverwriteEngine>(d, o.num_pages, oo);
  return FinishFixture(std::move(fx), snap);
}

Result<EngineFixture> BuildVersionSelect(const std::string& /*name*/,
                                         const FixtureOptions& o,
                                         const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::VersionSelectEngineOptions vo;
  vo.list_blocks = 48;
  vo.recovery_jobs = o.recovery_jobs;
  store::VirtualDisk* d =
      AddMirrored(&fx, snap, o.log_mirroring, "d",
                  1 + vo.list_blocks + 2 * o.num_pages, o.block_size);
  fx.engine =
      std::make_unique<store::VersionSelectEngine>(d, o.num_pages, vo);
  return FinishFixture(std::move(fx), snap);
}

Result<EngineFixture> BuildAries(const std::string& /*name*/,
                                 const FixtureOptions& o,
                                 const FixtureSnapshot* snap) {
  EngineFixture fx = NewFixtureShell();
  store::VirtualDisk* data =
      AddDisk(&fx, snap, "data", o.num_pages, o.block_size);
  // One log stream; 4x the WAL per-disk allotment since there is exactly
  // one and full-page before+after images double the record volume.
  store::VirtualDisk* log = AddMirrored(&fx, snap, o.log_mirroring, "log",
                                        4096, o.block_size);
  store::VirtualDisk* archive =
      o.archive ? AddDisk(&fx, snap, "archive", 1 + o.num_pages, o.block_size)
                : nullptr;
  store::AriesEngineOptions ao;
  ao.pool_frames = o.wal_pool_frames;
  ao.recovery_jobs = o.recovery_jobs;
  fx.engine = std::make_unique<store::AriesEngine>(data, log, ao, archive);
  return FinishFixture(std::move(fx), snap);
}

// The engine halves of the registry entries.  engine_order mirrors the
// historical EngineNames() sequence; the sim halves (orders, knobs, docs)
// are registered independently from src/machine/sim_*.cc and merge by
// name when both are linked.
/// The parallel-recovery knob shared by every engine with a partitioned
/// replay path; 0 selects the sequential reference implementation.
core::KnobSpec RecoveryJobsKnob() {
  return {"recovery-jobs",
          core::KnobType::kInt,
          "1",
          {},
          "parallel replay jobs for Recover(); 0 = sequential reference "
          "path, result is byte-identical at every setting"};
}

/// Media-redundancy knob shared by every engine: mirrors the log stream
/// (wal: each log disk; single-disk engines: the whole disk) so one lost
/// replica is survivable.
core::KnobSpec LogMirroringKnob() {
  return {"log-mirroring",
          core::KnobType::kBool,
          "0",
          {},
          "mirror the log stream across a replica pair (dual-write, "
          "read-fallback, rebuild after a media loss)"};
}

/// "logging" and "aries": fuzzy archive checkpoints for data-disk media
/// recovery.
core::KnobSpec ArchiveKnob() {
  return {"archive",
          core::KnobType::kBool,
          "0",
          {},
          "attach an archive disk swept at every log-truncation point; a "
          "lost data disk is rebuilt from archive + log replay"};
}

const core::EngineArchRegistrar kWalEngineRegistrar(
    "logging", 0,
    {{"wal",
      {},
      "write-ahead-log page engine: one data disk plus N append-only log "
      "disks, group commit, redo/undo recovery"}},
    &BuildWal, {RecoveryJobsKnob(), LogMirroringKnob(), ArchiveKnob()});
const core::EngineArchRegistrar kShadowEngineRegistrar(
    "shadow", 1,
    {{"shadow",
      {},
      "shadow-paging engine: copy-on-write blocks behind a page table "
      "flipped atomically at commit"}},
    &BuildShadow, {RecoveryJobsKnob(), LogMirroringKnob()});
const core::EngineArchRegistrar kDifferentialEngineRegistrar(
    "differential", 2,
    {{"differential",
      {},
      "differential-file engine: base file plus additions/deletions files "
      "discarded on recovery"}},
    &BuildDifferential, {RecoveryJobsKnob(), LogMirroringKnob()});
const core::EngineArchRegistrar kOverwriteEngineRegistrar(
    "overwrite", 3,
    {{"overwrite-noundo",
      {},
      "in-place engine, no-undo mode: deferred updates replayed from an "
      "intention list"},
     {"overwrite-noredo",
      {},
      "in-place engine, no-redo mode: before images restored on abort and "
      "recovery"}},
    &BuildOverwrite, {RecoveryJobsKnob(), LogMirroringKnob()});
const core::EngineArchRegistrar kVersionSelectEngineRegistrar(
    "version-select", 4,
    {{"version-select",
      {},
      "two-version engine: writes target the non-current version, a "
      "stable commit list selects the live one"}},
    &BuildVersionSelect, {RecoveryJobsKnob(), LogMirroringKnob()});
const core::EngineArchRegistrar kAriesEngineRegistrar(
    "aries", 5,
    {{"aries",
      {},
      "ARIES-style engine: per-page LSNs, fuzzy checkpoints, "
      "analysis/redo/undo restart with compensation records"}},
    &BuildAries, {RecoveryJobsKnob(), LogMirroringKnob(), ArchiveKnob()},
    {/*summary=*/"ARIES: WAL with per-page LSNs, fuzzy checkpoints, and "
                 "repeat-history restart",
     /*description=*/
     "The 1992 refinement of the paper's logging architecture, added for "
     "contrast: every data page carries the LSN of its newest applied "
     "record, the write-back path enforces pageLSN ≤ flushedLSN (the "
     "WAL rule reduced to one comparison), and fuzzy checkpoints snapshot "
     "the dirty-page and transaction tables without quiescing writers.  "
     "Restart runs the canonical three passes — analysis from the last "
     "checkpoint, redo from each page's recLSN repeating history (losers "
     "included) gated on pageLSN, and undo writing compensation records "
     "whose undo-next chain makes rollback itself restartable.  Redo "
     "parallelizes per page through the shared replay planner "
     "(`--recovery-jobs`); results are byte-identical at every setting.",
     /*paper_ref=*/"post-1985 (ARIES, TODS 1992)",
     /*invariants=*/{"aries-wal-lsn", "aries-clr-chain"}});

}  // namespace

Result<EngineFixture> MakeEngineFixture(const std::string& name,
                                        const FixtureOptions& o) {
  const core::ArchEntry* e = core::ArchRegistry::Global().ResolveEngine(name);
  if (e == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown engine \"%s\"", name.c_str()));
  }
  return e->make_engine(name, o, nullptr);
}

Result<EngineFixture> ForkEngineFixture(const std::string& name,
                                        const FixtureSnapshot& snapshot,
                                        const FixtureOptions& o) {
  const core::ArchEntry* e = core::ArchRegistry::Global().ResolveEngine(name);
  if (e == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown engine \"%s\"", name.c_str()));
  }
  return e->make_engine(name, o, &snapshot);
}

}  // namespace dbmr::chaos
