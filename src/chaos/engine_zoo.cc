#include "chaos/engine_zoo.h"

#include <utility>

#include "store/recovery/differential_page_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "util/str.h"

namespace dbmr::chaos {

namespace {

constexpr int64_t kUnlimited = int64_t{1} << 40;

/// When `snap` is null, creates a fresh zero-filled disk; otherwise forks
/// the next snapshot image in disk order (geometry must match — a snapshot
/// only fits fixtures built with the same name and options).
store::VirtualDisk* AddDisk(EngineFixture* fx, const FixtureSnapshot* snap,
                            const std::string& name, uint64_t blocks,
                            size_t block_size) {
  if (snap != nullptr) {
    const size_t i = fx->disks.size();
    DBMR_CHECK(i < snap->disks.size());
    const store::DiskSnapshot& image = snap->disks[i];
    DBMR_CHECK(image.num_blocks() == blocks);
    DBMR_CHECK(image.block_size() == block_size);
    fx->disks.push_back(store::VirtualDisk::ForkFrom(image));
  } else {
    fx->disks.push_back(
        std::make_unique<store::VirtualDisk>(name, blocks, block_size));
  }
  store::VirtualDisk* d = fx->disks.back().get();
  d->SetSharedFailCounter(fx->write_budget);
  d->SetSharedReadFailCounter(fx->read_budget);
  return d;
}

}  // namespace

void EngineFixture::Disarm() {
  *write_budget = kUnlimited;
  *read_budget = kUnlimited;
  for (auto& d : disks) d->ClearCrashState();
}

void EngineFixture::SetTornWrites(bool enabled, size_t prefix_bytes) {
  for (auto& d : disks) d->SetTornWriteMode(enabled, prefix_bytes);
}

bool EngineFixture::AnyCrashed() const {
  for (const auto& d : disks) {
    if (d->crashed()) return true;
  }
  return false;
}

uint64_t EngineFixture::TotalReads() const {
  uint64_t n = 0;
  for (const auto& d : disks) n += d->reads();
  return n;
}

uint64_t EngineFixture::TotalWrites() const {
  uint64_t n = 0;
  for (const auto& d : disks) n += d->writes();
  return n;
}

store::FaultCounters EngineFixture::TotalFaults() const {
  store::FaultCounters f;
  for (const auto& d : disks) f += d->fault_counters();
  return f;
}

FixtureSnapshot EngineFixture::TakeSnapshot() const {
  FixtureSnapshot snap;
  snap.disks.reserve(disks.size());
  for (const auto& d : disks) snap.disks.push_back(d->Snapshot());
  return snap;
}

const std::vector<std::string>& EngineNames() {
  static const std::vector<std::string> kNames = {
      "wal",
      "shadow",
      "differential",
      "overwrite-noundo",
      "overwrite-noredo",
      "version-select",
  };
  return kNames;
}

bool IsEngineName(const std::string& name) {
  for (const std::string& n : EngineNames()) {
    if (n == name) return true;
  }
  return false;
}

namespace {

/// Shared builder: assembles the named fixture over fresh disks
/// (snap == nullptr, then Format) or over forks of a snapshot (no Format —
/// the engine starts cold on the imaged durable state).
Result<EngineFixture> BuildFixture(const std::string& name,
                                   const FixtureOptions& o,
                                   const FixtureSnapshot* snap) {
  EngineFixture fx;
  fx.write_budget = std::make_shared<int64_t>(kUnlimited);
  fx.read_budget = std::make_shared<int64_t>(kUnlimited);

  if (name == "wal") {
    store::VirtualDisk* data =
        AddDisk(&fx, snap, "data", o.num_pages, o.block_size);
    std::vector<store::VirtualDisk*> logs;
    for (size_t i = 0; i < o.wal_logs; ++i) {
      logs.push_back(AddDisk(&fx, snap, StrFormat("log%zu", i), 1024,
                             o.block_size));
    }
    store::WalEngineOptions wo;
    wo.pool_frames = o.wal_pool_frames;
    fx.engine = std::make_unique<store::WalEngine>(data, logs, wo);
  } else if (name == "shadow") {
    store::VirtualDisk* d =
        AddDisk(&fx, snap, "d", o.num_pages * 3 + 8, o.block_size);
    fx.engine = std::make_unique<store::ShadowEngine>(d, o.num_pages);
  } else if (name == "differential") {
    store::DifferentialEngineOptions dopts;
    dopts.a_blocks = 96;
    dopts.d_blocks = 8;
    dopts.base_blocks = 8;
    store::VirtualDisk* d = AddDisk(
        &fx, snap, "d",
        1 + dopts.a_blocks + dopts.d_blocks + 2 * dopts.base_blocks,
        o.block_size);
    fx.engine = std::make_unique<store::DifferentialPageEngine>(
        d, o.num_pages, /*payload_bytes=*/32, dopts);
  } else if (name == "overwrite-noundo" || name == "overwrite-noredo") {
    store::OverwriteEngineOptions oo;
    oo.mode = name == "overwrite-noundo" ? store::OverwriteMode::kNoUndo
                                         : store::OverwriteMode::kNoRedo;
    oo.list_blocks = 48;
    oo.scratch_blocks = 48;
    store::VirtualDisk* d =
        AddDisk(&fx, snap, "d", o.num_pages + 97, o.block_size);
    fx.engine =
        std::make_unique<store::OverwriteEngine>(d, o.num_pages, oo);
  } else if (name == "version-select") {
    store::VersionSelectEngineOptions vo;
    vo.list_blocks = 48;
    store::VirtualDisk* d =
        AddDisk(&fx, snap, "d", 1 + vo.list_blocks + 2 * o.num_pages,
                o.block_size);
    fx.engine =
        std::make_unique<store::VersionSelectEngine>(d, o.num_pages, vo);
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown engine \"%s\"", name.c_str()));
  }

  if (snap == nullptr) {
    Status st = fx.engine->Format();
    if (!st.ok()) return st;
  } else {
    DBMR_CHECK(fx.disks.size() == snap->disks.size());
  }
  return fx;
}

}  // namespace

Result<EngineFixture> MakeEngineFixture(const std::string& name,
                                        const FixtureOptions& o) {
  return BuildFixture(name, o, nullptr);
}

Result<EngineFixture> ForkEngineFixture(const std::string& name,
                                        const FixtureSnapshot& snapshot,
                                        const FixtureOptions& o) {
  return BuildFixture(name, o, &snapshot);
}

}  // namespace dbmr::chaos
