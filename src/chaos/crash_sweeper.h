// Deterministic crash-schedule explorer in the simulation-testing
// tradition: replay one seeded workload against a recovery engine,
// crashing at EVERY reachable fault point in turn, and check the
// committed-state oracle after each recovery.
//
// Fault schedules explored per (engine, seed):
//
//  * Write crashes — for every write index w, fail-stop the disks after w
//    successful writes, then Crash() + Recover() and verify.  The sweep
//    terminates naturally when a whole replay fits under the budget.
//  * Nested crashes — for every write index w, replay to the same crash,
//    then cut Recover() itself down at every one of ITS write indices
//    (and, optionally, read indices), crash again, and require the second
//    recovery to succeed and verify.
//  * Double recovery — after every successful recovery, Crash() +
//    Recover() again and require the same oracle resolution (idempotence).
//  * Transient faults — for every disk and operation index, fail exactly
//    one read/write with a self-healing error; the harness retries reads,
//    aborts the victim transaction when possible, falls back to
//    crash-recovery otherwise, and requires recovery to succeed with NO
//    operator intervention (the fault healed itself).
//  * Bit flips — flip one stored bit in a block the workload wrote, then
//    crash-recover and classify the outcome: detected (an error
//    surfaced), masked (state still correct — e.g. the flip hit garbage
//    or a checksummed shadow copy), or silent (wrong data served).  Flips
//    are reported as statistics, not violations: only the version-select
//    architecture claims media-failure detection, and even it falls back
//    to the surviving (older) copy.
//
// Everything is deterministic: a violation is reproducible from
// (engine, seed, crash_index[, nested_index]) alone, and RunOne() replays
// exactly one such schedule.

#ifndef DBMR_CHAOS_CRASH_SWEEPER_H_
#define DBMR_CHAOS_CRASH_SWEEPER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/commit_oracle.h"
#include "chaos/engine_zoo.h"
#include "util/json.h"
#include "util/status.h"

namespace dbmr::chaos {

/// What to explore and how hard.
struct SweepOptions {
  uint64_t seed = 1;
  /// Transactions per replay.
  int txns = 8;
  /// Each transaction writes 1..max_writes_per_txn random pages.
  int max_writes_per_txn = 4;
  /// Probability a transaction aborts instead of committing.
  double abort_prob = 0.25;
  /// Each transaction reads one random page (and the harness checks the
  /// value against the oracle) before writing.
  bool reads_in_workload = true;

  bool nested_recovery_crashes = true;
  bool nested_recovery_read_crashes = true;
  bool double_recover = true;
  bool transient_faults = true;
  /// Torn-write sweeps assume the engine detects partial block writes;
  /// only version-select checksums its pages, so this defaults off.
  bool torn_writes = false;
  size_t torn_prefix_bytes = 96;
  /// Bit-flip trials per (engine, seed); statistics only.
  int bit_flip_trials = 16;
  /// Caps the write-crash sweep (< 0: exhaustive, the default).
  int64_t max_crash_points = -1;

  FixtureOptions fixture;
};

/// One contract violation, with everything needed to replay it.
struct Violation {
  std::string engine;
  /// Schedule kind: "final-state", "recover", "post-crash-state",
  /// "double-recover", "nested-recover", "nested-post-state",
  /// "transient-recover", "transient-post-state", "workload", ...
  std::string kind;
  uint64_t seed = 0;
  int64_t crash_index = -1;   ///< write budget of the outer crash
  int64_t nested_index = -1;  ///< write/read budget inside Recover()
  std::string detail;
  /// dbmr_torture flags reproducing this schedule.
  std::string repro;

  JsonValue ToJson() const;
};

/// Outcome counts of the bit-flip trials.
struct BitFlipStats {
  int64_t trials = 0;
  int64_t detected = 0;  ///< recovery or a later read surfaced an error
  int64_t masked = 0;    ///< state still matched the oracle
  int64_t silent = 0;    ///< wrong data served with no error
};

/// Everything one sweep of one (engine, seed) explored and found.
struct SweepReport {
  std::string engine;
  uint64_t seed = 0;
  bool completed = false;  ///< swept to natural termination (not capped)
  int64_t schedules = 0;   ///< full workload replays executed
  int64_t write_crash_points = 0;
  int64_t nested_write_crash_points = 0;
  int64_t nested_read_crash_points = 0;
  int64_t transient_points = 0;
  BitFlipStats bit_flips;
  /// Physical I/O and injected faults summed over every replay.
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  store::FaultCounters faults;
  std::vector<Violation> violations;

  JsonValue ToJson() const;
};

/// The sweeper.  A factory builds a fresh, formatted fixture per replay,
/// so every schedule starts from the same initial state.
class CrashSweeper {
 public:
  using FixtureFactory = std::function<Result<EngineFixture>()>;

  /// Sweeps the named zoo engine.
  CrashSweeper(std::string engine_name, SweepOptions options);

  /// Sweeps a custom fixture (tests use this to plant broken engines).
  CrashSweeper(std::string engine_name, FixtureFactory factory,
               SweepOptions options);

  /// Runs every enabled schedule family and returns the report.
  SweepReport Run();

  /// Replays exactly one schedule: crash after `crash_index` writes, and,
  /// if `nested_index` >= 0, cut recovery down after that many writes
  /// (reads when `nested_reads`).  Violations (if any) land in the report.
  SweepReport RunOne(int64_t crash_index, int64_t nested_index = -1,
                     bool nested_reads = false);

 private:
  struct ReplayOutcome {
    bool crashed = false;       ///< a fail-stop fault surfaced
    bool txn_in_flight = false; ///< the fault hit mid-transaction
    txn::TxnId victim = 0;      ///< transaction hit by the fault
    bool in_doubt = false;      ///< the fault hit inside Commit()
    Status error;               ///< first unexpected (non-fault) failure
  };

  Result<EngineFixture> MakeFixture() { return factory_(); }
  /// Replays the seeded workload, feeding `oracle`.  Stops at the first
  /// injected fault.  `transient` relaxes fault handling to the
  /// retry/abort path (see .cc).
  ReplayOutcome Replay(EngineFixture& fx, CommitOracle& oracle,
                       bool transient);
  void Absorb(const EngineFixture& fx, SweepReport* report) const;
  void AddViolation(SweepReport* report, const std::string& kind,
                    int64_t crash_index, int64_t nested_index,
                    bool nested_reads, const std::string& detail) const;

  /// Sub-sweeps, factored for RunOne reuse.
  void SweepWriteCrashes(SweepReport* report);
  bool CrashPoint(SweepReport* report, int64_t budget, int64_t nested_index,
                  bool nested_reads);
  void SweepTransient(SweepReport* report, bool read_path);
  void RunBitFlips(SweepReport* report);

  std::string name_;
  FixtureFactory factory_;
  SweepOptions opts_;
};

}  // namespace dbmr::chaos

#endif  // DBMR_CHAOS_CRASH_SWEEPER_H_
