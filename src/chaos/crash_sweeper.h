// Deterministic crash-schedule explorer in the simulation-testing
// tradition: replay one seeded workload against a recovery engine,
// crashing at EVERY reachable fault point in turn, and check the
// committed-state oracle after each recovery.
//
// Fault schedules explored per (engine, seed):
//
//  * Write crashes — for every write index w, fail-stop the disks after w
//    successful writes, then Crash() + Recover() and verify.  The sweep
//    terminates naturally when a whole replay fits under the budget.
//  * Nested crashes — for every write index w, replay to the same crash,
//    then cut Recover() itself down at every one of ITS write indices
//    (and, optionally, read indices), crash again, and require the second
//    recovery to succeed and verify.
//  * Double recovery — after every successful recovery, Crash() +
//    Recover() again and require the same oracle resolution (idempotence).
//  * Transient faults — for every disk and operation index, fail exactly
//    one read/write with a self-healing error; the harness retries reads,
//    aborts the victim transaction when possible, falls back to
//    crash-recovery otherwise, and requires recovery to succeed with NO
//    operator intervention (the fault healed itself).
//  * Bit flips — flip one stored bit in a block the workload wrote, then
//    crash-recover and classify the outcome: detected (an error
//    surfaced), masked (state still correct — e.g. the flip hit garbage
//    or a checksummed shadow copy), or silent (wrong data served).  Flips
//    are reported as statistics, not violations: only the version-select
//    architecture claims media-failure detection, and even it falls back
//    to the surviving (older) copy.
//
// Everything is deterministic: a violation is reproducible from
// (engine, seed, crash_index[, nested_index]) alone, and RunOne() replays
// exactly one such schedule.
//
// Execution strategy.  Replaying the whole workload from scratch at every
// crash index costs O(W^2) disk writes for a workload of W writes.  For
// zoo engines Run() instead replays the workload ONCE (the "golden"
// replay), recording every disk write, every oracle transition, and
// copy-on-write disk snapshots every `snapshot_stride` writes.  Each
// (crash_index, nested_index) trial then forks the nearest snapshot,
// rolls forward at most stride-1 recorded writes, reconstructs the oracle
// from the recorded transitions, and runs only recovery — O(W) replayed
// writes over the whole sweep.  Trials are independent (private forked
// disks, private oracle), so they run on `jobs` threads; results are
// merged in deterministic index order, making the report byte-identical
// at any job count.  Custom fixture factories cannot be forked and fall
// back to the sequential path automatically; `sequential_replay` forces
// it (benchmarks use this as the pre-fork baseline).  The two paths
// report identical violations and schedule counts — only the physical
// `disk_reads`/`disk_writes` tallies differ, since doing less I/O is the
// point.

#ifndef DBMR_CHAOS_CRASH_SWEEPER_H_
#define DBMR_CHAOS_CRASH_SWEEPER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/commit_oracle.h"
#include "chaos/engine_zoo.h"
#include "util/json.h"
#include "util/status.h"

namespace dbmr::core {
class ThreadPool;
}  // namespace dbmr::core

namespace dbmr::chaos {

/// What to explore and how hard.
struct SweepOptions {
  uint64_t seed = 1;
  /// Transactions per replay.
  int txns = 8;
  /// Each transaction writes 1..max_writes_per_txn random pages.
  int max_writes_per_txn = 4;
  /// Probability a transaction aborts instead of committing.
  double abort_prob = 0.25;
  /// Each transaction reads one random page (and the harness checks the
  /// value against the oracle) before writing.
  bool reads_in_workload = true;

  bool nested_recovery_crashes = true;
  bool nested_recovery_read_crashes = true;
  bool double_recover = true;
  bool transient_faults = true;
  /// Torn-write sweeps assume the engine detects partial block writes;
  /// only version-select checksums its pages, so this defaults off.
  bool torn_writes = false;
  size_t torn_prefix_bytes = 96;
  /// Bit-flip trials per (engine, seed); statistics only.
  int bit_flip_trials = 16;
  /// Media-failure sweep: permanently lose each disk's medium at every
  /// workload write index (and at every write index inside Recover() of
  /// the final image), repair through EngineFixture::RepairMedia(), and
  /// require the rebuilt image to match the oracle with zero
  /// committed-transaction loss.  A disk with no redundancy behind it must
  /// fail the repair gracefully with kDataLoss — never serve a wrong
  /// image.  Also runs a checksum-scrubbing pass that injects silent
  /// corruptions and must detect 100% of them.
  bool media_faults = false;
  /// Scrub-pass corruption injections per (engine, seed).
  int scrub_trials = 16;
  /// Caps the write-crash sweep (< 0: exhaustive, the default).
  int64_t max_crash_points = -1;

  /// Trial parallelism for the snapshot-forked path (0: one job per
  /// hardware thread).  Ignored when Run() is handed an external pool.
  /// The report is byte-identical at any job count.
  int jobs = 1;
  /// The golden replay snapshots the disks every `snapshot_stride`
  /// successful writes (>= 1); a trial rolls forward at most stride-1
  /// recorded writes from the nearest snapshot.  Smaller is faster but
  /// holds more snapshots.
  int snapshot_stride = 4;
  /// Forces the O(W^2) replay-from-scratch sweeper even for zoo engines.
  /// Benchmarks use this as the pre-fork baseline.
  bool sequential_replay = false;

  FixtureOptions fixture;
};

/// One contract violation, with everything needed to replay it.
struct Violation {
  std::string engine;
  /// Schedule kind: "final-state", "recover", "post-crash-state",
  /// "double-recover", "nested-recover", "nested-post-state",
  /// "transient-recover", "transient-post-state", "workload", ...
  std::string kind;
  uint64_t seed = 0;
  int64_t crash_index = -1;   ///< write budget of the outer crash
  int64_t nested_index = -1;  ///< write/read budget inside Recover()
  std::string detail;
  /// dbmr_torture flags reproducing this schedule.
  std::string repro;

  JsonValue ToJson() const;
};

/// Outcome counts of the bit-flip trials.
struct BitFlipStats {
  int64_t trials = 0;
  int64_t detected = 0;  ///< recovery or a later read surfaced an error
  int64_t masked = 0;    ///< state still matched the oracle
  int64_t silent = 0;    ///< wrong data served with no error
};

/// Everything one sweep of one (engine, seed) explored and found.
struct SweepReport {
  std::string engine;
  uint64_t seed = 0;
  bool completed = false;  ///< swept to natural termination (not capped)
  int64_t schedules = 0;   ///< schedules explored (replays + forked trials)
  int64_t write_crash_points = 0;
  int64_t nested_write_crash_points = 0;
  int64_t nested_read_crash_points = 0;
  int64_t transient_points = 0;
  BitFlipStats bit_flips;
  /// Engine-level transient-I/O retry totals (store::RetryDiskIo): retries
  /// that healed a transient error, and give-ups that surfaced it.
  int64_t io_retries = 0;
  int64_t io_giveups = 0;
  /// Media-failure sweep tallies (present in ToJson() only after a
  /// media_faults run, so reports without the sweep are unchanged).
  bool media_swept = false;
  int64_t media_crash_points = 0;  ///< (disk, write-index) media losses
  int64_t media_recover_crash_points = 0;  ///< losses inside Recover()
  int64_t media_data_loss = 0;  ///< graceful kDataLoss (no redundancy)
  int64_t scrub_injected = 0;   ///< silent corruptions planted
  int64_t scrub_detected = 0;   ///< caught by the checksum scrub pass
  /// Physical I/O and injected faults summed over every replay.
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  store::FaultCounters faults;
  /// Recovery attribution, summed over every Recover() call the sweep
  /// made.  `replay_records` is deterministic (stable records examined
  /// during replay); `recovery_ms` is wall-clock and therefore excluded
  /// from ToJson() unless `include_timing` is set.
  int64_t replay_records = 0;
  double recovery_ms = 0.0;
  std::vector<Violation> violations;

  JsonValue ToJson(bool include_timing = false) const;
};

/// The sweeper.  A factory builds a fresh, formatted fixture per replay,
/// so every schedule starts from the same initial state.
class CrashSweeper {
 public:
  using FixtureFactory = std::function<Result<EngineFixture>()>;

  /// Sweeps the named zoo engine.
  CrashSweeper(std::string engine_name, SweepOptions options);

  /// Sweeps a custom fixture (tests use this to plant broken engines).
  CrashSweeper(std::string engine_name, FixtureFactory factory,
               SweepOptions options);

  /// Runs every enabled schedule family and returns the report.  `pool`
  /// optionally supplies worker threads for the snapshot-forked path
  /// (callers sharing one pool across sweeps avoid re-spawning threads);
  /// when null, a pool of opts.jobs threads is built on demand.
  SweepReport Run(core::ThreadPool* pool = nullptr);

  /// Replays exactly one schedule: crash after `crash_index` writes, and,
  /// if `nested_index` >= 0, cut recovery down after that many writes
  /// (reads when `nested_reads`).  Violations (if any) land in the report.
  SweepReport RunOne(int64_t crash_index, int64_t nested_index = -1,
                     bool nested_reads = false);

 private:
  struct ReplayOutcome {
    bool crashed = false;       ///< a fail-stop fault surfaced
    bool txn_in_flight = false; ///< the fault hit mid-transaction
    txn::TxnId victim = 0;      ///< transaction hit by the fault
    bool in_doubt = false;      ///< the fault hit inside Commit()
    Status error;               ///< first unexpected (non-fault) failure
  };
  struct GoldenTrace;   // one instrumented fault-free replay (see .cc)
  struct TrialResult;   // everything one forked trial found (see .cc)

  Result<EngineFixture> MakeFixture() { return factory_(); }
  /// Recover() plus attribution: wall-clock into `*ms`, stable
  /// replay-record count (engine->last_recovery_stats()) into `*records`.
  static Status RecoverTimed(EngineFixture& fx, double* ms,
                             int64_t* records);
  /// Replays the seeded workload, feeding `oracle`.  Stops at the first
  /// injected fault.  `transient` relaxes fault handling to the
  /// retry/abort path (see .cc).  A non-null `trace` records every disk
  /// write, oracle transition, and stride snapshot (golden replays only).
  ReplayOutcome Replay(EngineFixture& fx, CommitOracle& oracle,
                       bool transient, GoldenTrace* trace = nullptr);
  void Absorb(const EngineFixture& fx, SweepReport* report) const;
  Violation MakeViolation(const std::string& kind, int64_t crash_index,
                          int64_t nested_index, bool nested_reads,
                          const std::string& detail) const;
  void AddViolation(SweepReport* report, const std::string& kind,
                    int64_t crash_index, int64_t nested_index,
                    bool nested_reads, const std::string& detail) const;

  /// Sequential (replay-from-scratch) path: RunOne, custom fixture
  /// factories, and the sequential_replay benchmark baseline.
  SweepReport RunSequential();
  void SweepWriteCrashes(SweepReport* report);
  bool CrashPoint(SweepReport* report, int64_t budget, int64_t nested_index,
                  bool nested_reads);
  void SweepTransient(SweepReport* report, bool read_path);
  void RunBitFlips(SweepReport* report);
  /// Media-failure sweep (media_faults): both paths run it sequentially —
  /// the trials are cheap and the report stays byte-identical at any job
  /// count for free.
  void SweepMedia(SweepReport* report);
  /// Repair + recover + verify after a planted media loss on disk `d`.
  void MediaRepairAndVerify(SweepReport* report, EngineFixture& fx,
                            CommitOracle& oracle, int64_t index, size_t d,
                            bool mid_recover);
  /// Checksum scrubber (media_faults): plants silent corruptions in
  /// workload-written blocks and requires the scrub pass to catch every
  /// one.
  void RunScrub(SweepReport* report);

  /// Snapshot-forked path.
  SweepReport RunForked(core::ThreadPool* pool);
  Result<EngineFixture> ForkTrialFixture(const GoldenTrace& trace,
                                         int64_t budget) const;
  CommitOracle ReconstructOracle(const GoldenTrace& trace,
                                 int64_t budget) const;
  TrialResult ForkedPlainTrial(const GoldenTrace& trace, int64_t budget);
  TrialResult ForkedNestedTrial(const GoldenTrace& trace, int64_t budget,
                                int64_t nested_index, bool nested_reads);
  TrialResult ForkedTransientTrial(size_t disk, int64_t op_index,
                                   bool read_path);
  TrialResult ForkedBitFlipTrial(const GoldenTrace& trace, size_t disk,
                                 store::BlockId block, size_t byte,
                                 uint8_t mask);

  std::string name_;
  FixtureFactory factory_;
  SweepOptions opts_;
  /// Zoo fixtures can be rebuilt over disk snapshots; custom factories
  /// cannot, and use the sequential path.
  bool forkable_ = false;
};

}  // namespace dbmr::chaos

#endif  // DBMR_CHAOS_CRASH_SWEEPER_H_
