// Reference model of the transactional page-store contract.
//
// The oracle shadows a workload as it runs against a PageEngine: it
// records each transaction's buffered writes and their outcome (committed,
// aborted, vanished in a crash, or in doubt because Commit() itself was
// cut down by a fault).  After recovery, Verify() reads every page of the
// engine and checks the two §3 invariants:
//
//   durability — every write of a transaction whose Commit() returned OK
//                is present;
//   atomicity  — no write of an aborted, active-at-crash, or never-started
//                transaction is visible, and an in-doubt transaction
//                surfaces either entirely or not at all, never partially.
//
// The oracle is engine-agnostic and deterministic; it holds no disk state
// of its own, so the same oracle instance is reused across replays by
// calling Reset().

#ifndef DBMR_CHAOS_COMMIT_ORACLE_H_
#define DBMR_CHAOS_COMMIT_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/page_engine.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::chaos {

using store::PageData;

/// How Verify() resolved an in-doubt transaction.
enum class InDoubtResolution {
  kNone,       ///< there was no in-doubt transaction
  kCommitted,  ///< its writes surfaced (the commit record made it)
  kRolledBack, ///< its writes are absent
  kEither,     ///< indistinguishable (its writes equal the prior state)
};

/// The committed-state reference model.
class CommitOracle {
 public:
  CommitOracle(uint64_t num_pages, size_t payload_size);

  /// Forgets everything (fresh store, all pages zero).
  void Reset();

  /// Records a successful engine Write() of an active transaction.
  void OnWrite(txn::TxnId t, txn::PageId page, const PageData& payload);

  /// The transaction aborted (voluntarily or as a lock victim).
  void OnAbort(txn::TxnId t);

  /// The transaction's Commit() returned OK: its writes are durable.
  void OnCommitOk(txn::TxnId t);

  /// The transaction's Commit() failed on an injected fault: it may
  /// surface fully or not at all after recovery.  At most one transaction
  /// may be in doubt per replay (the workload stops at the first fault).
  void OnCommitInDoubt(txn::TxnId t);

  /// A crash wiped volatile state: all still-active transactions vanish
  /// (an in-doubt commit stays in doubt).
  void OnCrash();

  /// The committed image of `page` (all-zero when never written).
  PageData Expected(txn::PageId page) const;

  /// Reference form of Expected(); the returned reference stays valid
  /// until the oracle is mutated.  Verify() compares every page against
  /// the model, so the per-page copy matters there.
  const PageData& ExpectedRef(txn::PageId page) const;

  bool has_in_doubt() const { return !in_doubt_.empty(); }

  /// Reads every page of `e` through a fresh transaction and checks the
  /// contract.  On success sets `resolution` (if non-null) to how the
  /// in-doubt transaction, if any, resolved.  Failure statuses:
  ///   kInternal   — state mismatch (a real recovery violation);
  ///   anything else — an engine Read/Begin failed with that status
  ///                   (corruption detected, I/O fault still armed, ...).
  Status Verify(store::PageEngine* e,
                InDoubtResolution* resolution = nullptr,
                std::string* detail = nullptr) const;

 private:
  uint64_t num_pages_;
  size_t payload_size_;
  /// Committed page images; absent means all-zero.
  std::map<txn::PageId, PageData> committed_;
  /// Buffered writes of live transactions (latest image per page).
  std::unordered_map<txn::TxnId, std::map<txn::PageId, PageData>> active_;
  /// Write set of the single in-doubt transaction (empty map = none).
  std::map<txn::PageId, PageData> in_doubt_;
  /// All-zero page backing ExpectedRef() for never-written pages.
  PageData zero_page_;
};

}  // namespace dbmr::chaos

#endif  // DBMR_CHAOS_COMMIT_ORACLE_H_
