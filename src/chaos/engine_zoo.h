// Named factories for torture-ready recovery-engine fixtures.
//
// Every functional engine from the paper is constructible by name, wired
// to fault-armable VirtualDisks with shared write/read fail budgets
// already attached.  The chaos harness, the torture CLI, tests, and the
// examples all build their engines here so a "wal" means the same thing
// everywhere.

#ifndef DBMR_CHAOS_ENGINE_ZOO_H_
#define DBMR_CHAOS_ENGINE_ZOO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/mirrored_disk.h"
#include "store/page_engine.h"
#include "store/virtual_disk.h"
#include "util/status.h"

namespace dbmr::chaos {

/// Sizing knobs for a fixture.  The defaults give small stores whose
/// crash-everywhere sweeps stay fast while still exercising eviction,
/// scratch reuse, and multi-block log streams.
struct FixtureOptions {
  uint64_t num_pages = 16;
  size_t block_size = 256;
  /// Parallel log streams for the "wal" fixture.
  size_t wal_logs = 2;
  /// Buffer-pool frames for the "wal" fixture (small forces steal).
  size_t wal_pool_frames = 4;
  /// Parallel replay jobs for every engine's Recover() (wal, overwrite,
  /// version-select honor it; the rest ignore it).  >= 1 uses the
  /// partitioned replay planner; 0 forces the sequential reference path.
  /// Recovered images are byte-identical at every setting.
  int recovery_jobs = 1;
  /// Mirror the engine's log stream (dual-write, read-fallback): the wal
  /// fixture mirrors each log disk; single-disk engines, whose log/stream
  /// areas share the data disk, mirror that whole disk.  One lost replica
  /// is then survivable via EngineFixture::RepairMedia().
  bool log_mirroring = false;
  /// "wal" and "aries" only: attach an archive disk and take fuzzy archive
  /// sweeps at every log-truncation point, so a lost (unmirrored) data
  /// disk can be rebuilt from archive + log replay by MediaRecover().
  bool archive = false;
};

/// Frozen images of a fixture's disks, in disk order.  Cheap to take and
/// copy (copy-on-write; see store::DiskSnapshot) and safe to share across
/// threads.  Feed one back to ForkEngineFixture to open an independent
/// fixture on that durable state.
struct FixtureSnapshot {
  std::vector<store::DiskSnapshot> disks;
};

/// An engine under torture: the engine, the disks it lives on, and the
/// shared fault budgets armed across all of them.
struct EngineFixture {
  std::vector<std::unique_ptr<store::VirtualDisk>> disks;
  /// Mirrored views handed to the engine in place of replica pairs from
  /// `disks` (log_mirroring).  The real disks keep the budgets, snapshots,
  /// and fault state; the views only route I/O.
  std::vector<std::unique_ptr<store::MirroredDisk>> mirrors;
  std::unique_ptr<store::PageEngine> engine;
  /// Shared across all disks: successful writes/reads remaining before
  /// fail-stop.  Effectively unlimited until armed.
  std::shared_ptr<int64_t> write_budget;
  std::shared_ptr<int64_t> read_budget;

  /// Allows `n` more successful writes anywhere, then fail-stop.
  void ArmWrites(int64_t n) { *write_budget = n; }
  /// Allows `n` more successful reads anywhere, then fail-stop.
  void ArmReads(int64_t n) { *read_budget = n; }
  /// Refills both budgets and clears every disk's crash state.
  void Disarm();
  /// Arms/unarms torn-write mode on every disk.
  void SetTornWrites(bool enabled, size_t prefix_bytes);
  /// True if any disk has an un-cleared fail-stop fault.
  bool AnyCrashed() const;
  /// True if any disk's medium is permanently lost.
  bool AnyMediaLost() const;
  /// Media-failure repair, in redundancy order: rebuilds every degraded
  /// mirror pair from its surviving replica, then hands any disk that is
  /// still lost (unmirrored data/archive) to the engine's MediaRecover().
  /// kDataLoss when redundancy is exhausted — the image is unrecoverable
  /// and the caller must not trust it.  Follow a success with
  /// engine->Recover() to replay surviving state.
  Status RepairMedia();

  uint64_t TotalReads() const;
  uint64_t TotalWrites() const;
  store::FaultCounters TotalFaults() const;

  /// Freezes every disk's contents.
  FixtureSnapshot TakeSnapshot() const;
};

/// The torturable engine names, in canonical order: wal, shadow,
/// differential, overwrite-noundo, overwrite-noredo, version-select,
/// aries.
const std::vector<std::string>& EngineNames();

/// True if `name` is one of EngineNames().
bool IsEngineName(const std::string& name);

/// Builds and formats the named fixture.  Fails with InvalidArgument for
/// an unknown name.
Result<EngineFixture> MakeEngineFixture(const std::string& name,
                                        const FixtureOptions& options = {});

/// Builds the named fixture over forks of `snapshot` instead of fresh
/// formatted disks: the engine starts cold — exactly as after a crash on
/// the snapshotted state — with fresh fault budgets and zeroed counters,
/// and Format() is NOT called.  `snapshot` must come from a fixture built
/// with the same (name, options); callers are expected to Recover() the
/// engine before use.  Fixtures forked from one snapshot are fully
/// independent (copy-on-write), so trials may run them on different
/// threads.
Result<EngineFixture> ForkEngineFixture(const std::string& name,
                                        const FixtureSnapshot& snapshot,
                                        const FixtureOptions& options = {});

}  // namespace dbmr::chaos

#endif  // DBMR_CHAOS_ENGINE_ZOO_H_
