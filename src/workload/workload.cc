#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

namespace dbmr::workload {

namespace {

/// SplitMix64 finalizer: scrambles Zipf ranks across the page space so
/// the hot set does not cluster at low page ids (which would pin it to
/// one disk and one home processor).
constexpr uint64_t MixRank(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ReferenceKindName(ReferenceKind kind) {
  switch (kind) {
    case ReferenceKind::kRandom:
      return "random";
    case ReferenceKind::kSequential:
      return "sequential";
  }
  return "unknown";
}

ZipfianDraw::ZipfianDraw(uint64_t n, double theta) : n_(n), theta_(theta) {
  DBMR_CHECK(n >= 2);
  DBMR_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianDraw::Rank(Rng& rng) const {
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

namespace {

class GeneratorSource final : public TxnSource {
 public:
  explicit GeneratorSource(const WorkloadOptions& options)
      : options_(options), rng_(options.seed) {
    DBMR_CHECK(options.num_transactions > 0);
    DBMR_CHECK(options.min_pages >= 1 &&
               options.max_pages >= options.min_pages);
    DBMR_CHECK(options.db_pages >= static_cast<uint64_t>(options.max_pages));
    if (options.zipf_theta > 0.0 && options.kind == ReferenceKind::kRandom) {
      zipf_.emplace(options.db_pages, options.zipf_theta);
    }
  }

  bool Next(TransactionSpec* out) override {
    if (next_index_ >= options_.num_transactions) return false;
    const int i = next_index_++;
    out->id = static_cast<txn::TxnId>(i + 1);
    out->reads.clear();
    // A fresh set each transaction, so bucket layout — and therefore any
    // iteration over it downstream — matches a from-scratch generation.
    out->write_set = std::unordered_set<uint64_t>();
    const int n = static_cast<int>(
        rng_.UniformInt(options_.min_pages, options_.max_pages));
    out->reads.reserve(static_cast<size_t>(n));

    if (options_.kind == ReferenceKind::kSequential) {
      const uint64_t start = static_cast<uint64_t>(rng_.UniformInt(
          0, static_cast<int64_t>(options_.db_pages) - n));
      for (int k = 0; k < n; ++k) {
        out->reads.push_back(start + static_cast<uint64_t>(k));
      }
    } else if (zipf_) {
      seen_.clear();
      while (out->reads.size() < static_cast<size_t>(n)) {
        const uint64_t p = MixRank(zipf_->Rank(rng_)) % options_.db_pages;
        if (seen_.insert(p).second) out->reads.push_back(p);
      }
    } else {
      seen_.clear();
      const auto hot_pages = static_cast<int64_t>(
          static_cast<double>(options_.db_pages) * options_.hot_fraction);
      while (out->reads.size() < static_cast<size_t>(n)) {
        uint64_t p;
        if (hot_pages > 0 && rng_.Bernoulli(options_.hot_access_prob)) {
          p = static_cast<uint64_t>(rng_.UniformInt(0, hot_pages - 1));
        } else {
          p = static_cast<uint64_t>(rng_.UniformInt(
              0, static_cast<int64_t>(options_.db_pages) - 1));
        }
        if (seen_.insert(p).second) out->reads.push_back(p);
      }
    }

    // Write set: a random subset, write_fraction of the reads (rounded).
    const auto num_writes = static_cast<size_t>(
        static_cast<double>(n) * options_.write_fraction + 0.5);
    pool_ = out->reads;
    // Fisher-Yates prefix shuffle for the sample.
    for (size_t k = 0; k < num_writes && k < pool_.size(); ++k) {
      size_t j = static_cast<size_t>(rng_.UniformInt(
          static_cast<int64_t>(k), static_cast<int64_t>(pool_.size()) - 1));
      std::swap(pool_[k], pool_[j]);
      out->write_set.insert(pool_[k]);
    }
    return true;
  }

  uint64_t total() const override {
    return static_cast<uint64_t>(options_.num_transactions);
  }

 private:
  WorkloadOptions options_;
  Rng rng_;
  int next_index_ = 0;
  std::optional<ZipfianDraw> zipf_;
  std::unordered_set<uint64_t> seen_;  // scratch, reused across txns
  std::vector<uint64_t> pool_;         // scratch for write-set sampling
};

class VectorSource final : public TxnSource {
 public:
  explicit VectorSource(std::vector<TransactionSpec> txns)
      : txns_(std::move(txns)) {}

  bool Next(TransactionSpec* out) override {
    if (next_ >= txns_.size()) return false;
    *out = std::move(txns_[next_++]);
    return true;
  }

  uint64_t total() const override { return txns_.size(); }

 private:
  std::vector<TransactionSpec> txns_;
  size_t next_ = 0;
};

}  // namespace

std::unique_ptr<TxnSource> MakeGeneratorSource(const WorkloadOptions& options) {
  return std::make_unique<GeneratorSource>(options);
}

std::unique_ptr<TxnSource> MakeVectorSource(std::vector<TransactionSpec> txns) {
  return std::make_unique<VectorSource>(std::move(txns));
}

std::vector<TransactionSpec> GenerateWorkload(const WorkloadOptions& options) {
  GeneratorSource source(options);
  std::vector<TransactionSpec> txns;
  txns.reserve(static_cast<size_t>(options.num_transactions));
  TransactionSpec t;
  while (source.Next(&t)) txns.push_back(std::move(t));
  return txns;
}

uint64_t TotalPages(const std::vector<TransactionSpec>& txns) {
  uint64_t total = 0;
  for (const auto& t : txns) total += t.num_reads() + t.num_writes();
  return total;
}

}  // namespace dbmr::workload
