#include "workload/workload.h"

#include <algorithm>

namespace dbmr::workload {

const char* ReferenceKindName(ReferenceKind kind) {
  switch (kind) {
    case ReferenceKind::kRandom:
      return "random";
    case ReferenceKind::kSequential:
      return "sequential";
  }
  return "unknown";
}

std::vector<TransactionSpec> GenerateWorkload(const WorkloadOptions& options) {
  DBMR_CHECK(options.num_transactions > 0);
  DBMR_CHECK(options.min_pages >= 1 &&
             options.max_pages >= options.min_pages);
  DBMR_CHECK(options.db_pages >=
             static_cast<uint64_t>(options.max_pages));
  Rng rng(options.seed);
  std::vector<TransactionSpec> txns;
  txns.reserve(static_cast<size_t>(options.num_transactions));

  for (int i = 0; i < options.num_transactions; ++i) {
    TransactionSpec t;
    t.id = static_cast<txn::TxnId>(i + 1);
    const int n = static_cast<int>(
        rng.UniformInt(options.min_pages, options.max_pages));
    t.reads.reserve(static_cast<size_t>(n));

    if (options.kind == ReferenceKind::kSequential) {
      const uint64_t start = static_cast<uint64_t>(rng.UniformInt(
          0, static_cast<int64_t>(options.db_pages) - n));
      for (int k = 0; k < n; ++k) {
        t.reads.push_back(start + static_cast<uint64_t>(k));
      }
    } else {
      std::unordered_set<uint64_t> seen;
      const auto hot_pages = static_cast<int64_t>(
          static_cast<double>(options.db_pages) * options.hot_fraction);
      while (t.reads.size() < static_cast<size_t>(n)) {
        uint64_t p;
        if (hot_pages > 0 && rng.Bernoulli(options.hot_access_prob)) {
          p = static_cast<uint64_t>(rng.UniformInt(0, hot_pages - 1));
        } else {
          p = static_cast<uint64_t>(rng.UniformInt(
              0, static_cast<int64_t>(options.db_pages) - 1));
        }
        if (seen.insert(p).second) t.reads.push_back(p);
      }
    }

    // Write set: a random subset, write_fraction of the reads (rounded).
    const auto num_writes = static_cast<size_t>(
        static_cast<double>(n) * options.write_fraction + 0.5);
    std::vector<uint64_t> pool = t.reads;
    // Fisher-Yates prefix shuffle for the sample.
    for (size_t k = 0; k < num_writes && k < pool.size(); ++k) {
      size_t j = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(k), static_cast<int64_t>(pool.size()) - 1));
      std::swap(pool[k], pool[j]);
      t.write_set.insert(pool[k]);
    }
    txns.push_back(std::move(t));
  }
  return txns;
}

uint64_t TotalPages(const std::vector<TransactionSpec>& txns) {
  uint64_t total = 0;
  for (const auto& t : txns) total += t.num_reads() + t.num_writes();
  return total;
}

}  // namespace dbmr::workload
