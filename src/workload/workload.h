// Transaction workload generation (paper §4).
//
// "A transaction was modeled by the number of pages it accesses.  This
//  value was assumed to be a uniform random variable in the range of 1 to
//  250 pages.  Both random and sequential reference strings ... The write
//  set of a transaction was assumed to be a random subset of its read set
//  and was taken to be 20% of the pages read."

#ifndef DBMR_WORKLOAD_WORKLOAD_H_
#define DBMR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "txn/types.h"
#include "util/rng.h"

namespace dbmr::workload {

/// Reference-string shape.
enum class ReferenceKind {
  kRandom,
  kSequential,
};

const char* ReferenceKindName(ReferenceKind kind);

/// One generated transaction.
struct TransactionSpec {
  txn::TxnId id = 0;
  /// Ordered read reference string (logical page ids).
  std::vector<uint64_t> reads;
  /// Pages that are updated after being read (subset of `reads`).
  std::unordered_set<uint64_t> write_set;

  size_t num_reads() const { return reads.size(); }
  size_t num_writes() const { return write_set.size(); }
};

/// Workload parameters.
struct WorkloadOptions {
  int num_transactions = 100;
  int min_pages = 1;
  int max_pages = 250;
  double write_fraction = 0.2;
  ReferenceKind kind = ReferenceKind::kRandom;
  /// Logical database size in pages.
  uint64_t db_pages = 100000;
  /// Extension beyond the paper: access skew for random reference
  /// strings.  With probability `hot_access_prob` a reference lands in the
  /// first `hot_fraction` of the database (e.g. 0.2/0.8 gives the classic
  /// 80/20 rule).  0 disables skew (the paper's uniform model).
  double hot_fraction = 0.0;
  double hot_access_prob = 0.0;
  uint64_t seed = 1;
};

/// Generates a deterministic workload from the options.
std::vector<TransactionSpec> GenerateWorkload(const WorkloadOptions& options);

/// Total pages read plus pages written across the workload — the
/// denominator of the paper's "execution time per page" metric.
uint64_t TotalPages(const std::vector<TransactionSpec>& txns);

}  // namespace dbmr::workload

#endif  // DBMR_WORKLOAD_WORKLOAD_H_
