// Transaction workload generation (paper §4).
//
// "A transaction was modeled by the number of pages it accesses.  This
//  value was assumed to be a uniform random variable in the range of 1 to
//  250 pages.  Both random and sequential reference strings ... The write
//  set of a transaction was assumed to be a random subset of its read set
//  and was taken to be 20% of the pages read."
//
// Workloads are produced by a streaming TxnSource: one transaction at a
// time, in admission order, from O(1) state — a million-transaction run
// never materializes a million TransactionSpecs.  GenerateWorkload()
// remains as the eager convenience wrapper (it drains a source) and
// produces the byte-identical transaction stream.

#ifndef DBMR_WORKLOAD_WORKLOAD_H_
#define DBMR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "txn/types.h"
#include "util/rng.h"

namespace dbmr::workload {

/// Reference-string shape.
enum class ReferenceKind {
  kRandom,
  kSequential,
};

const char* ReferenceKindName(ReferenceKind kind);

/// One generated transaction.
struct TransactionSpec {
  txn::TxnId id = 0;
  /// Ordered read reference string (logical page ids).
  std::vector<uint64_t> reads;
  /// Pages that are updated after being read (subset of `reads`).
  std::unordered_set<uint64_t> write_set;

  size_t num_reads() const { return reads.size(); }
  size_t num_writes() const { return write_set.size(); }
};

/// Workload parameters.
struct WorkloadOptions {
  int num_transactions = 100;
  int min_pages = 1;
  int max_pages = 250;
  double write_fraction = 0.2;
  ReferenceKind kind = ReferenceKind::kRandom;
  /// Logical database size in pages.
  uint64_t db_pages = 100000;
  /// Extension beyond the paper: access skew for random reference
  /// strings.  With probability `hot_access_prob` a reference lands in the
  /// first `hot_fraction` of the database (e.g. 0.2/0.8 gives the classic
  /// 80/20 rule).  0 disables skew (the paper's uniform model).
  double hot_fraction = 0.0;
  double hot_access_prob = 0.0;
  /// Beyond the paper: YCSB-style Zipfian access skew for random
  /// reference strings.  When theta > 0 (theta < 1), page *ranks* are
  /// drawn from Zipf(theta) over db_pages and scrambled rank → page with
  /// a splitmix hash, so the hot set spreads across the whole database
  /// (and therefore across disks and home processors) instead of
  /// clustering at low page ids.  Takes precedence over
  /// hot_fraction/hot_access_prob when set.
  double zipf_theta = 0.0;
  uint64_t seed = 1;
};

/// Zipfian rank distribution over [0, n) with parameter theta in (0, 1)
/// (Gray et al. / YCSB formulation).  Construction precomputes the
/// harmonic normalizer in O(n); Rank() is then O(1) per draw.
class ZipfianDraw {
 public:
  ZipfianDraw(uint64_t n, double theta);
  /// Draws a rank in [0, n); rank 0 is the hottest.
  uint64_t Rank(Rng& rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Streaming transaction source.  Sources are single-pass and
/// deterministic: a given source type + options always yields the same
/// sequence.
class TxnSource {
 public:
  virtual ~TxnSource() = default;
  /// Fills `out` with the next transaction (reusing its buffers where
  /// that cannot change behaviour).  Returns false when exhausted.
  virtual bool Next(TransactionSpec* out) = 0;
  /// Total transactions this source yields across its lifetime.
  virtual uint64_t total() const = 0;
};

/// O(1)-state generator source: yields num_transactions specs drawn from
/// one seeded Rng, id order 1..N — the same stream GenerateWorkload
/// materializes.
std::unique_ptr<TxnSource> MakeGeneratorSource(const WorkloadOptions& options);

/// Adapts an already-materialized workload (tests, hand-built specs).
std::unique_ptr<TxnSource> MakeVectorSource(std::vector<TransactionSpec> txns);

/// Generates a deterministic workload from the options (drains a
/// generator source).
std::vector<TransactionSpec> GenerateWorkload(const WorkloadOptions& options);

/// Total pages read plus pages written across the workload — the
/// denominator of the paper's "execution time per page" metric.
uint64_t TotalPages(const std::vector<TransactionSpec>& txns);

}  // namespace dbmr::workload

#endif  // DBMR_WORKLOAD_WORKLOAD_H_
